package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitAck is the 200 body of an awaited claims post.
type waitAck struct {
	Accepted int    `json:"accepted"`
	Version  uint64 `json:"version"`
	ETag     string `json:"etag"`
}

func postClaimsWait(t *testing.T, ts *httptest.Server, path, body string, hdr map[string]string) (*http.Response, waitAck) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ack waitAck
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ack
}

// TestClaimsWaitPublishes: ?wait=1 (and Prefer: wait) block the claims
// post until its batch's delta publishes and answer 200 carrying the
// published version and its ETag — read-your-writes without polling. A
// no-op batch still answers 200 with the already-served version, and a
// plain post keeps the 202 fire-and-forget contract.
func TestClaimsWaitPublishes(t *testing.T) {
	_, ing, _, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20, MaxAge: time.Hour})
	ing.Start()
	t.Cleanup(func() { _ = ing.Close() })

	// ?wait=1 resolves with the version its flush published.
	resp, ack := postClaimsWait(t, ts, "/v1/claims?wait=1",
		`{"claims":[{"source":"src0","object":"obj01","attribute":"price","value":"99.5"}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("awaited post: status %d, want 200", resp.StatusCode)
	}
	if ack.Accepted != 1 || ack.Version != 2 {
		t.Fatalf("awaited ack %+v, want 1 accepted at version 2", ack)
	}
	if ack.ETag == "" || ack.ETag != resp.Header.Get("ETag") {
		t.Fatalf("awaited ack etag %q vs header %q", ack.ETag, resp.Header.Get("ETag"))
	}

	// The served answers already reflect the awaited write.
	var wire wireAnswers
	getJSON(t, ts, "/v1/answers", http.StatusOK, &wire)
	if wire.Version != 2 {
		t.Fatalf("served version %d after awaited post, want 2", wire.Version)
	}

	// Prefer: wait is the header spelling of the same contract.
	resp, ack = postClaimsWait(t, ts, "/v1/claims",
		`{"claims":[{"source":"src1","object":"obj02","attribute":"price","value":"77.25"}]}`,
		map[string]string{"Prefer": "wait"})
	if resp.StatusCode != http.StatusOK || ack.Version != 3 {
		t.Fatalf("Prefer: wait post: status %d version %d, want 200 at version 3", resp.StatusCode, ack.Version)
	}

	// Re-asserting the identical value is an all-no-op batch: nothing
	// publishes, and the answer carries the version already served.
	resp, ack = postClaimsWait(t, ts, "/v1/claims?wait=1",
		`{"claims":[{"source":"src1","object":"obj02","attribute":"price","value":"77.25"}]}`, nil)
	if resp.StatusCode != http.StatusOK || ack.Version != 3 {
		t.Fatalf("no-op awaited post: status %d version %d, want 200 at version 3", resp.StatusCode, ack.Version)
	}

	// A plain post still answers 202 without blocking.
	plain := postClaims(t, ts,
		`{"claims":[{"source":"src2","object":"obj03","attribute":"price","value":"55.75"}]}`)
	plain.Body.Close()
	if plain.StatusCode != http.StatusAccepted {
		t.Fatalf("plain post: status %d, want 202", plain.StatusCode)
	}
}

// TestStatsTopology: every server reports its engine layout under the
// stable topology key — flat by default, and whatever layout was
// published via SetTopology otherwise.
func TestStatsTopology(t *testing.T) {
	w := buildWorld(t)
	r, srv := newRefresher(t, w, "Vote", false)
	if _, err := r.Publish(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stats map[string]any
	getJSON(t, ts, "/v1/stats", http.StatusOK, &stats)
	topo, ok := stats["topology"].(map[string]any)
	if !ok {
		t.Fatalf("stats have no topology object: %v", stats)
	}
	if topo["mode"] != "flat" {
		t.Fatalf("default topology mode %q, want flat", topo["mode"])
	}
	if _, has := topo["workers"]; has {
		t.Fatalf("flat topology leaks a workers list: %v", topo)
	}

	srv.SetTopology(Topology{Mode: "sharded", Shards: 8, Kind: "range", MaxResident: 2})
	getJSON(t, ts, "/v1/stats", http.StatusOK, &stats)
	topo = stats["topology"].(map[string]any)
	if topo["mode"] != "sharded" || topo["shards"] != float64(8) ||
		topo["kind"] != "range" || topo["max_resident_shards"] != float64(2) {
		t.Fatalf("published topology %v, want sharded/range 8 shards 2 resident", topo)
	}
}
