package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/store"
)

// Refresher is the background half of the serving layer: it owns the
// incremental fusion engine, and for each day's delta it advances the
// engine, persists the new run to the store, and swaps the server's view.
// Queries keep hitting the old view until the swap — the pipeline never
// blocks a reader.
//
// A Refresher serializes its writers internally: Publish, Resume and
// Apply take one mutex, so the daily delta loop and a live claim-ingest
// flusher can share it without coordination (the server side is
// lock-free regardless).
type Refresher struct {
	// mu serializes Publish/Resume/Apply — at most one engine advance or
	// view publication at a time.
	mu sync.Mutex

	DS     *model.Dataset
	Engine Engine
	Server *Server
	// Store, when non-nil, receives one persisted run per published view
	// and assigns the view versions. Without a store, versions count up
	// from 1 in memory.
	Store *store.Store
	// Fingerprint identifies the method/options configuration
	// (truthdiscovery.FuseOptions.Fingerprint); stamped on every run.
	Fingerprint string
	// Opts are the fusion options every Advance uses.
	Opts fusion.Options

	// day/label track the snapshot identity the engine currently
	// reflects; Apply moves them to the delta's target.
	day     int
	label   string
	version uint64 // last published version (store-less mode)
}

// NewRefresher wires a refresher whose engine currently reflects the
// given snapshot identity (day0 of the stream). eng may be nil for a
// store-only server that will Resume a persisted run and never refresh
// (Publish and Apply then return errors instead of fusing).
func NewRefresher(ds *model.Dataset, eng Engine, srv *Server, st *store.Store,
	fingerprint string, day int, label string, opts fusion.Options) *Refresher {
	return &Refresher{
		DS: ds, Engine: eng, Server: srv, Store: st,
		Fingerprint: fingerprint, Opts: opts, day: day, label: label,
	}
}

// viewNow renders the engine's current state as an unversioned view.
func (r *Refresher) viewNow() *View {
	answers, res := r.Engine.Current(r.DS)
	roster := r.Engine.Roster()
	return NewView(View{
		Method:      r.Engine.Method(),
		Fingerprint: r.Fingerprint,
		Day:         r.day,
		Label:       r.label,
		CreatedUnix: time.Now().Unix(),
		SourceIDs:   roster,
		SourceNames: sourceNamesFor(r.DS, roster),
		Trust:       res.Trust,
		AttrTrust:   res.AttrTrust,
		Answers:     answers,
		Posteriors:  res.Posteriors,
	})
}

// publish persists a view (when a store is configured), stamps its
// version, and swaps it into the server.
func (r *Refresher) publish(v *View) (*View, error) {
	if r.Store != nil {
		run := v.Run(v.CreatedUnix)
		version, err := r.Store.Save(run)
		if err != nil {
			return nil, fmt.Errorf("serve: persisting run: %w", err)
		}
		v.Version = version
	} else {
		r.version++
		v.Version = r.version
	}
	v.etag = store.ETag(v.Version)
	if r.Server != nil {
		r.Server.Swap(v)
	}
	return v, nil
}

// Publish renders, persists and serves the engine's current state — the
// first version of a fresh stream.
func (r *Refresher) Publish() (*View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Engine == nil {
		return nil, fmt.Errorf("serve: refresher has no engine (store-only resume); nothing to publish")
	}
	return r.publish(r.viewNow())
}

// Resume serves an already persisted run without re-fusing, after
// checking it matches the refresher's configuration — the fingerprint
// AND the snapshot day the engine currently reflects. The day check is
// what keeps a later Apply honest: an engine at day 0 fed a run from day
// 2 would accept the day-2→3 delta and swap in answers that are the Fuse
// of no real snapshot. Callers resuming mid-stream must fast-forward the
// engine to the run's day first (cmd/truthserved does).
func (r *Refresher) Resume(run *store.Run) (*View, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if run.Fingerprint != r.Fingerprint {
		return nil, fmt.Errorf("serve: stored run %d has fingerprint %s, want %s (different method/options); refuse to serve it",
			run.Version, run.Fingerprint, r.Fingerprint)
	}
	if run.Day != r.day {
		return nil, fmt.Errorf("serve: stored run %d reflects day %d (%s), but the engine is at day %d (%s); fast-forward the engine or re-fuse",
			run.Version, run.Day, run.Label, r.day, r.label)
	}
	v := FromRun(run)
	r.label = v.Label
	r.version = v.Version
	if r.Server != nil {
		r.Server.Swap(v)
	}
	return v, nil
}

// The refresher is the in-process Applier behind the ingest flush path;
// the distributed coordinator (internal/dist) is the other one.
var _ Applier = (*Refresher)(nil)

// Apply advances the engine over one delta, persists the new run and
// swaps the served view. The delta must continue the engine's stream
// (its FromDay is the day of the currently served state).
func (r *Refresher) Apply(dl *model.Delta) (*View, fusion.IncrementalStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.Engine == nil {
		return nil, fusion.IncrementalStats{}, fmt.Errorf("serve: refresher has no engine (store-only resume); cannot apply deltas")
	}
	if dl.FromDay != r.day {
		return nil, fusion.IncrementalStats{}, fmt.Errorf(
			"serve: delta advances day %d, but the engine is at day %d", dl.FromDay, r.day)
	}
	stats, err := r.Engine.Advance(r.DS, dl, r.Opts)
	if err != nil {
		return nil, stats, err
	}
	r.day, r.label = dl.ToDay, dl.ToLabel
	v, err := r.publish(r.viewNow())
	if err == nil && v != nil && stats.Plan != nil && r.Server != nil {
		r.Server.RecordPlan(PlannerDecision{
			Version:  v.Version,
			Day:      r.day,
			Path:     string(stats.Plan.Path),
			Layout:   string(stats.Plan.Layout),
			Forced:   stats.Plan.Forced,
			Fallback: stats.Fallback,
			Reason:   stats.Plan.Reason,
			Features: stats.Plan.Features,
		})
	}
	return v, stats, err
}

// Run consumes deltas until the channel closes or the context ends,
// applying each in order. The first error stops the loop (the server
// keeps serving the last good view).
func (r *Refresher) Run(ctx context.Context, deltas <-chan *model.Delta) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case dl, ok := <-deltas:
			if !ok {
				return nil
			}
			if _, _, err := r.Apply(dl); err != nil {
				return err
			}
		}
	}
}
