package serve

// The topology object is part of the v1 stats contract: every server
// reports how its fusion engine is laid out under a stable shape, so
// operators and routers read one field instead of mode-specific ad-hoc
// keys. Modes: "flat" (one in-process engine, the default), "sharded"
// (one process, partitioned arenas), "distributed" (shards owned by
// worker processes behind the scatter-gather router — the workers list
// carries per-worker address, owned shard range, liveness and the last
// version each worker published).

// WorkerStatus is one shard worker's row in a distributed topology.
type WorkerStatus struct {
	Index int    `json:"index"`
	Addr  string `json:"addr"`
	// Shards is the owned shard range [lo, hi).
	Shards  [2]int `json:"shards"`
	Healthy bool   `json:"healthy"`
	Version uint64 `json:"version"`
}

// Topology describes the serving engine's layout for /v1/stats.
type Topology struct {
	// Mode is "flat", "sharded" or "distributed".
	Mode string `json:"mode"`
	// Shards and Kind are the shard spec (absent in flat mode).
	Shards int    `json:"shards,omitempty"`
	Kind   string `json:"kind,omitempty"`
	// MaxResident is the sharded engine's arena budget (0 = all resident).
	MaxResident int `json:"max_resident_shards,omitempty"`
	// Workers lists the shard workers (distributed mode only).
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// SetTopology publishes the server's engine layout for /v1/stats. Safe
// to call while serving (a router refreshes worker health in place).
func (s *Server) SetTopology(t Topology) { s.topo.Store(&t) }

// Topology returns the published layout, defaulting to flat mode.
func (s *Server) Topology() Topology {
	if t := s.topo.Load(); t != nil {
		return *t
	}
	return Topology{Mode: "flat"}
}
