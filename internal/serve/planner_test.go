package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// decodeStatsPlanner pulls the planner object out of a /v1/stats payload.
func decodeStatsPlanner(t *testing.T, ts *httptest.Server) (float64, []map[string]any) {
	t.Helper()
	var stats map[string]any
	getJSON(t, ts, "/v1/stats", http.StatusOK, &stats)
	obj, ok := stats["planner"].(map[string]any)
	if !ok {
		t.Fatalf("stats payload has no planner object: %v", stats)
	}
	recorded, ok := obj["recorded"].(float64)
	if !ok {
		t.Fatalf("planner object has no recorded count: %v", obj)
	}
	raw, ok := obj["decisions"].([]any)
	if !ok {
		t.Fatalf("planner object has no decisions list: %v", obj)
	}
	var decisions []map[string]any
	for _, d := range raw {
		m, ok := d.(map[string]any)
		if !ok {
			t.Fatalf("decision is not an object: %v", d)
		}
		decisions = append(decisions, m)
	}
	return recorded, decisions
}

// TestStatsPlanner: /v1/stats carries a planner object next to topology —
// empty on a fresh server, and holding one decision per applied delta
// with the executed path, layout, day and the measured features.
func TestStatsPlanner(t *testing.T) {
	w := buildWorld(t)
	r, srv := newRefresher(t, w, "AccuPr", false)
	if _, err := r.Publish(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	recorded, decisions := decodeStatsPlanner(t, ts)
	if recorded != 0 || len(decisions) != 0 {
		t.Fatalf("fresh server: %v recorded, %d decisions, want none", recorded, len(decisions))
	}

	v, stats, err := r.Apply(w.delta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan == nil {
		t.Fatal("advance recorded no plan in its stats")
	}

	recorded, decisions = decodeStatsPlanner(t, ts)
	if recorded != 1 || len(decisions) != 1 {
		t.Fatalf("after one apply: %v recorded, %d decisions, want 1/1", recorded, len(decisions))
	}
	d := decisions[0]
	if got := d["path"]; got != "local" && got != "warm" && got != "full" {
		t.Fatalf("decision path %v is not a recognized mode", got)
	}
	if got := d["path"]; got != string(stats.Plan.Path) {
		t.Fatalf("decision path %v, engine ran %s", got, stats.Plan.Path)
	}
	if got := d["layout"]; got != "flat" {
		t.Fatalf("decision layout %v, want flat", got)
	}
	if got := d["version"]; got != float64(v.Version) {
		t.Fatalf("decision version %v, want %d", got, v.Version)
	}
	if got := d["day"]; got != float64(w.delta.ToDay) {
		t.Fatalf("decision day %v, want %d", got, w.delta.ToDay)
	}
	if d["reason"] == "" {
		t.Fatal("decision carries no reason")
	}
	feats, ok := d["features"].(map[string]any)
	if !ok {
		t.Fatalf("decision carries no features: %v", d)
	}
	if got, _ := feats["total_items"].(float64); got != float64(len(w.ds.Items)) {
		t.Fatalf("features report %v total items, want %d", feats["total_items"], len(w.ds.Items))
	}
}

// TestStatsPlannerIngestFlush: the live claim-ingest flush goes through
// the same Apply, so an awaited write lands a decision in the stats ring
// stamped with the version the flush published.
func TestStatsPlannerIngestFlush(t *testing.T) {
	_, ing, _, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20, MaxAge: time.Hour})
	ing.Start()
	t.Cleanup(func() { _ = ing.Close() })

	resp, ack := postClaimsWait(t, ts, "/v1/claims?wait=1",
		`{"claims":[{"source":"src0","object":"obj01","attribute":"price","value":"99.5"}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("awaited post: status %d, want 200", resp.StatusCode)
	}

	recorded, decisions := decodeStatsPlanner(t, ts)
	if recorded != 1 || len(decisions) != 1 {
		t.Fatalf("after awaited ingest: %v recorded, %d decisions, want 1/1", recorded, len(decisions))
	}
	d := decisions[0]
	if got := d["version"]; got != float64(ack.Version) {
		t.Fatalf("decision version %v, ingest published %d", got, ack.Version)
	}
	// Vote is item-local: the planner routes a live flush down the
	// cheapest path.
	if got := d["path"]; got != "local" {
		t.Fatalf("decision path %v, want local for an item-local method", got)
	}
}

// TestPlannerRingRotation: the stats ring keeps the newest
// plannerRingSize decisions, newest first, while the recorded total
// keeps counting.
func TestPlannerRingRotation(t *testing.T) {
	srv := NewServer()
	const total = plannerRingSize + 7
	for i := 0; i < total; i++ {
		srv.RecordPlan(PlannerDecision{Version: uint64(i + 1), Day: i})
	}
	decisions, n := srv.PlannerDecisions()
	if n != total {
		t.Fatalf("recorded %d, want %d", n, total)
	}
	if len(decisions) != plannerRingSize {
		t.Fatalf("ring kept %d decisions, want %d", len(decisions), plannerRingSize)
	}
	for i, d := range decisions {
		if want := uint64(total - i); d.Version != want {
			t.Fatalf("decision %d has version %d, want %d (newest first)", i, d.Version, want)
		}
	}
}
