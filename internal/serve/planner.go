package serve

import (
	"sync"

	"truthdiscovery/internal/fusion"
)

// The planner object is part of the v1 stats contract, next to topology:
// every advance's execution decision — which path ran, why, and the
// measured delta features it was decided on — is recorded in a small
// ring so an operator can audit the adaptive engine without scraping
// logs. The refresher records one decision per applied delta (the daily
// loop and the live claim-ingest flush path both go through Apply, so
// both are covered).

// PlannerDecision is one recorded advance decision, newest first in the
// stats output.
type PlannerDecision struct {
	// Version is the view version the advance published.
	Version uint64 `json:"version"`
	// Day is the stream day the advance moved the engine to.
	Day int `json:"day"`
	// Path is the executed path: "local", "warm" or "full".
	Path string `json:"path"`
	// Layout is the engine layout: "flat" or "sharded".
	Layout string `json:"layout"`
	// Forced marks a PlannerForced decision.
	Forced bool `json:"forced,omitempty"`
	// Fallback marks a warm attempt that drifted past the tolerance and
	// re-ran the full iteration (Path is then the fallback path).
	Fallback bool `json:"fallback,omitempty"`
	// Reason is the planner's human-readable decision trace.
	Reason string `json:"reason"`
	// Features are the measured delta features the decision was made on.
	Features fusion.PlanFeatures `json:"features"`
}

// plannerRingSize is how many decisions /v1/stats keeps; older ones
// rotate out.
const plannerRingSize = 16

// plannerRing is a fixed-size ring of the latest decisions. It takes a
// mutex — records happen once per applied delta, far off any read hot
// path (stats reads are rare and cheap).
type plannerRing struct {
	mu  sync.Mutex
	buf [plannerRingSize]PlannerDecision
	n   uint64 // total decisions ever recorded
}

// RecordPlan appends one advance decision to the stats ring.
func (s *Server) RecordPlan(d PlannerDecision) {
	s.plans.mu.Lock()
	s.plans.buf[s.plans.n%plannerRingSize] = d
	s.plans.n++
	s.plans.mu.Unlock()
}

// PlannerDecisions returns the recorded decisions, newest first, plus
// the total ever recorded (the ring keeps the latest plannerRingSize).
func (s *Server) PlannerDecisions() ([]PlannerDecision, uint64) {
	s.plans.mu.Lock()
	defer s.plans.mu.Unlock()
	n := s.plans.n
	kept := n
	if kept > plannerRingSize {
		kept = plannerRingSize
	}
	out := make([]PlannerDecision, 0, kept)
	for i := uint64(0); i < kept; i++ {
		out = append(out, s.plans.buf[(n-1-i)%plannerRingSize])
	}
	return out, n
}

// plannerStats renders the planner object for /v1/stats.
func (s *Server) plannerStats() map[string]any {
	decisions, total := s.PlannerDecisions()
	return map[string]any{
		"recorded":  total,
		"decisions": decisions,
	}
}
