package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/store"
	"truthdiscovery/internal/value"
)

// armIngest publishes day 0 of the test world and wires an ingester with
// the given config over the refresher.
func armIngest(t *testing.T, method string, cfg IngestConfig) (*testWorld, *Ingester, *Server, *httptest.Server) {
	t.Helper()
	w := buildWorld(t)
	r, srv := newRefresher(t, w, method, false)
	if _, err := r.Publish(); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(w.ds, r, w.snaps[0], cfg)
	srv.SetIngester(ing)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return w, ing, srv, ts
}

func postClaims(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/claims", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestFlushPublishes pushes a change, a retraction, and (after a
// second flush) a re-addition through POST /v1/claims, asserting after
// each flush that the served answers are bit-identical to a direct fuse
// of a hand-built snapshot carrying the same claim set, and that every
// flush bumps the version and rotates the ETag.
func TestIngestFlushPublishes(t *testing.T) {
	w, ing, srv, ts := armIngest(t, "AccuPr", IngestConfig{MaxBatch: 1 << 20})
	v1 := srv.View().Version

	// Batch 1: src0 reprices obj00 and src1's claims on obj01 and obj02
	// are retracted. Parsed values carry the granularity their printed
	// form implies ("99.5" → gran 0.1), so the expected claims below must
	// too.
	resp := postClaims(t, ts, `{"claims":[
		{"source":"src0","object":"obj00","attribute":"price","value":"99.5"},
		{"source":"src1","object":"obj01","attribute":"price","retract":true},
		{"source":"src1","object":"obj02","attribute":"price","retract":true}]}`)
	var accepted struct {
		Accepted int `json:"accepted"`
		Pending  int `json:"pending"`
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/claims: status %d, want 202", resp.StatusCode)
	}
	decodeBody(t, resp, &accepted)
	resp.Body.Close()
	if accepted.Accepted != 3 || accepted.Pending != 3 {
		t.Fatalf("accepted %+v, want 3/3", accepted)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}

	// The reference: the same claim set fused offline.
	mutate := func(claims []model.Claim, change func(c *model.Claim) bool, drop func(c *model.Claim) bool) []model.Claim {
		out := make([]model.Claim, 0, len(claims))
		for _, c := range claims {
			if drop != nil && drop(&c) {
				continue
			}
			if change != nil {
				change(&c)
			}
			out = append(out, c)
		}
		return out
	}
	item := func(obj int) model.ItemID { return w.snaps[0].ItemClaims(model.ItemID(obj))[0].Item }
	after1 := model.NewSnapshot(1, "live-1", len(w.ds.Items), mutate(w.snaps[0].Claims,
		func(c *model.Claim) bool {
			if c.Item == item(0) && c.Source == 0 {
				c.Val = value.NumGran(99.5, 0.1)
			}
			return true
		},
		func(c *model.Claim) bool {
			return (c.Item == item(1) || c.Item == item(2)) && c.Source == 1
		},
	))
	var got wireAnswers
	getJSON(t, ts, "/v1/answers", http.StatusOK, &got)
	matchAnswers(t, "after flush 1", got, expectedAnswers(t, w, "AccuPr", after1))
	if got.Version == v1 {
		t.Fatalf("flush did not bump the version from %d", v1)
	}
	if srv.View().ETag() == store.ETag(v1) {
		t.Fatal("flush did not rotate the ETag")
	}

	// Batch 2: src1 returns to obj01 with a new value — the Added path.
	resp = postClaims(t, ts, `{"claims":[
		{"source":"src1","object":"obj01","attribute":"price","value":"42.25"}]}`)
	resp.Body.Close()
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	after2claims := append(mutate(after1.Claims, nil, nil), model.Claim{
		Source: 1, Item: item(1), Val: value.NumGran(42.25, 0.01), CopiedFrom: model.NoSource,
	})
	after2 := model.NewSnapshot(2, "live-2", len(w.ds.Items), after2claims)
	getJSON(t, ts, "/v1/answers", http.StatusOK, &got)
	matchAnswers(t, "after flush 2", got, expectedAnswers(t, w, "AccuPr", after2))

	// Batch 3: re-asserting the identical value and retracting the
	// still-absent (src1, obj02) claim are both no-ops — the flush finds
	// an empty delta and publishes nothing, leaving version and ETag
	// untouched.
	vBefore := srv.View().Version
	resp = postClaims(t, ts, `{"claims":[
		{"source":"src1","object":"obj01","attribute":"price","value":"42.25"},
		{"source":"src1","object":"obj02","attribute":"price","retract":true}]}`)
	resp.Body.Close()
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := srv.View().Version; got != vBefore {
		t.Fatalf("pure-noop flush published version %d (was %d)", got, vBefore)
	}

	// Stats: the no-ops were counted and the empty delta was not a flush.
	var stats map[string]any
	getJSON(t, ts, "/v1/stats", http.StatusOK, &stats)
	ingStats, _ := stats["ingest"].(map[string]any)
	if ingStats == nil {
		t.Fatal("stats carry no ingest block")
	}
	if n, _ := ingStats["noops"].(float64); n != 2 {
		t.Fatalf("noops = %v, want 2", n)
	}
	if n, _ := ingStats["flushes"].(float64); n != 2 {
		t.Fatalf("flushes = %v, want 2", n)
	}
}

// TestIngestValidation: every malformed batch is rejected whole with a
// machine-readable 400 and nothing is enqueued.
func TestIngestValidation(t *testing.T) {
	_, ing, _, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20})
	cases := []struct {
		body, code string
	}{
		{`not json`, "bad_json"},
		{`{"claims":[],"extra":1}`, "bad_json"},
		{`{"claims":[]}`, "empty_batch"},
		{`{"claims":[{"source":"nope","object":"obj00","attribute":"price","value":"1"}]}`, "unknown_source"},
		{`{"claims":[{"source":"src0","object":"nope","attribute":"price","value":"1"}]}`, "unknown_object"},
		{`{"claims":[{"source":"src0","object":"obj00","attribute":"nope","value":"1"}]}`, "unknown_attribute"},
		{`{"claims":[{"source":"src0","object":"obj00","attribute":"price","value":"not-a-number"}]}`, "bad_value"},
		{`{"claims":[
			{"source":"src0","object":"obj00","attribute":"price","value":"1"},
			{"source":"nope","object":"obj00","attribute":"price","value":"1"}]}`, "unknown_source"},
	}
	for _, tc := range cases {
		resp := postClaims(t, ts, tc.body)
		var env envelope
		decodeBody(t, resp, &env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != tc.code {
			t.Fatalf("body %q: status %d code %q, want 400 %q", tc.body, resp.StatusCode, env.Error.Code, tc.code)
		}
	}
	if got := ing.Stats()["pending"].(int); got != 0 {
		t.Fatalf("rejected batches enqueued %d ops", got)
	}
}

// TestIngestBackpressure: a batch that would push the pending set past
// MaxPending is refused whole with 429 + Retry-After, leaving the
// pending set exactly as it was.
func TestIngestBackpressure(t *testing.T) {
	_, ing, _, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20, MaxPending: 5})

	batch := func(n, off int) string {
		ops := make([]string, n)
		for i := range ops {
			ops[i] = fmt.Sprintf(`{"source":"src%d","object":"obj%02d","attribute":"price","value":"7"}`,
				(i+off)%5, (i+off)/5)
		}
		return `{"claims":[` + strings.Join(ops, ",") + `]}`
	}

	resp := postClaims(t, ts, batch(6, 0))
	var env envelope
	decodeBody(t, resp, &env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || env.Error.Code != "ingest_backlog" {
		t.Fatalf("oversized batch: status %d code %q, want 429 ingest_backlog", resp.StatusCode, env.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carried no Retry-After")
	}
	if got := ing.Stats()["pending"].(int); got != 0 {
		t.Fatalf("refused batch left %d pending", got)
	}

	// 3 fit; 3 more would exceed 5 and are refused; the first 3 stay.
	resp = postClaims(t, ts, batch(3, 0))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch: status %d, want 202", resp.StatusCode)
	}
	resp = postClaims(t, ts, batch(3, 3))
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing batch: status %d, want 429", resp.StatusCode)
	}
	if got := ing.Stats()["pending"].(int); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
}

// TestIngestLastWins: two ops on the same (item, source) key in one
// window coalesce to the later one.
func TestIngestLastWins(t *testing.T) {
	w, ing, srv, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20})
	resp := postClaims(t, ts, `{"claims":[
		{"source":"src0","object":"obj00","attribute":"price","value":"1.0"},
		{"source":"src0","object":"obj00","attribute":"price","retract":true},
		{"source":"src0","object":"obj00","attribute":"price","value":"77.75"}]}`)
	var accepted struct {
		Pending int `json:"pending"`
	}
	decodeBody(t, resp, &accepted)
	resp.Body.Close()
	if accepted.Pending != 1 {
		t.Fatalf("pending = %d after three ops on one key, want 1", accepted.Pending)
	}
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	item := w.snaps[0].ItemClaims(0)[0].Item
	claims := ing.Base().ItemClaims(item)
	found := false
	for _, c := range claims {
		if c.Source == 0 {
			found = true
			if c.Val != value.NumGran(77.75, 0.01) {
				t.Fatalf("coalesced value %v, want 77.75", c.Val)
			}
		}
	}
	if !found {
		t.Fatal("coalesced claim missing from the flushed base")
	}
	if srv.View().Version != 2 {
		t.Fatalf("version %d, want 2", srv.View().Version)
	}
}

// TestIngestBackgroundFlush: the age-based flusher publishes without any
// explicit Flush call, and Close drains what is left.
func TestIngestBackgroundFlush(t *testing.T) {
	_, ing, srv, ts := armIngest(t, "Vote", IngestConfig{MaxBatch: 1 << 20, MaxAge: 20 * time.Millisecond})
	ing.Start()
	resp := postClaims(t, ts, `{"claims":[
		{"source":"src0","object":"obj03","attribute":"price","value":"55.5"}]}`)
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.View().Version < 2 {
		if time.Now().After(deadline) {
			t.Fatal("age-based flush never published")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Close stops accepting and flushes the remainder.
	resp = postClaims(t, ts, `{"claims":[
		{"source":"src1","object":"obj03","attribute":"price","value":"55.5"}]}`)
	resp.Body.Close()
	if err := ing.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ing.Stats()["pending"].(int); got != 0 {
		t.Fatalf("Close left %d pending", got)
	}
	resp = postClaims(t, ts, `{"claims":[
		{"source":"src2","object":"obj03","attribute":"price","value":"1"}]}`)
	var env envelope
	decodeBody(t, resp, &env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || env.Error.Code != "shutting_down" {
		t.Fatalf("post-Close enqueue: status %d code %q, want 503 shutting_down", resp.StatusCode, env.Error.Code)
	}
}

// TestIngestSharded runs one ingest flush through the sharded engine:
// the write path is engine-agnostic and the served answers equal a
// direct fuse of the same claims.
func TestIngestSharded(t *testing.T) {
	w := buildWorld(t)
	eng, err := NewEngine(w.ds, w.snaps[0], nil, "AccuPr", EngineOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	r := NewRefresher(w.ds, eng, srv, nil, "test-fp", 0, "day0", fusion.Options{})
	if _, err := r.Publish(); err != nil {
		t.Fatal(err)
	}
	ing := NewIngester(w.ds, r, w.snaps[0], IngestConfig{MaxBatch: 1 << 20})
	srv.SetIngester(ing)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postClaims(t, ts, `{"claims":[
		{"source":"src3","object":"obj29","attribute":"price","value":"3.25"}]}`)
	resp.Body.Close()
	if err := ing.Flush(); err != nil {
		t.Fatal(err)
	}
	var got wireAnswers
	getJSON(t, ts, "/v1/answers", http.StatusOK, &got)
	matchAnswers(t, "sharded ingest", got, expectedAnswers(t, w, "AccuPr", ing.Base()))
}
