// Package serve exposes persisted fusion results over HTTP: the paper's
// fused answer table ("what is this stock's price right now?") behind the
// query API the daily pipeline feeds. The server holds one immutable View
// in an atomic pointer — reads never lock — and a Refresher advances the
// underlying incremental engine over the day's delta, persists the new
// version to an internal/store, and swaps the pointer.
package serve

import (
	"fmt"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/store"
)

// View is one immutable, fully indexed serving snapshot: a persisted run
// plus the per-object lookup index. Views are never mutated after
// NewView; the server swaps whole pointers.
type View struct {
	Version     uint64
	Method      string
	Fingerprint string
	Day         int
	Label       string
	CreatedUnix int64

	SourceIDs   []model.SourceID
	SourceNames []string
	Trust       []float64
	AttrTrust   [][]float64
	Answers     []fusion.Answer
	Posteriors  [][]float64

	// byObject maps an object key to the indices of its answers (one per
	// attribute), in answer order.
	byObject map[string][]int32

	// etag caches the version-keyed entity tag (store.ETag of Version).
	// publish and FromRun set it once the version is known; views built
	// by hand leave it empty and ETag derives it on demand.
	etag string
}

// NewView indexes a view; every slice is retained, not copied, and must
// not be mutated afterwards.
func NewView(v View) *View {
	v.byObject = make(map[string][]int32, len(v.Answers))
	for i := range v.Answers {
		key := v.Answers[i].ObjectKey
		v.byObject[key] = append(v.byObject[key], int32(i))
	}
	return &v
}

// ETag returns the strong entity tag of the view — purely a function of
// the version, so a response body and its ETag can never disagree as
// long as both are read from the same view pointer.
func (v *View) ETag() string {
	if v.etag != "" {
		return v.etag
	}
	return store.ETag(v.Version)
}

// FromRun wraps a persisted run as a serving view.
func FromRun(run *store.Run) *View {
	return NewView(View{
		etag:        store.ETag(run.Version),
		Version:     run.Version,
		Method:      run.Method,
		Fingerprint: run.Fingerprint,
		Day:         run.Day,
		Label:       run.Label,
		CreatedUnix: run.CreatedUnix,
		SourceIDs:   run.SourceIDs,
		SourceNames: run.SourceNames,
		Trust:       run.Trust,
		AttrTrust:   run.AttrTrust,
		Answers:     run.Answers,
		Posteriors:  run.Posteriors,
	})
}

// Run renders the view as a persistable run (the inverse of FromRun).
func (v *View) Run(createdUnix int64) *store.Run {
	return &store.Run{
		Version:     v.Version,
		Method:      v.Method,
		Fingerprint: v.Fingerprint,
		Day:         v.Day,
		Label:       v.Label,
		CreatedUnix: createdUnix,
		SourceIDs:   v.SourceIDs,
		SourceNames: v.SourceNames,
		Trust:       v.Trust,
		AttrTrust:   v.AttrTrust,
		Answers:     v.Answers,
		Posteriors:  v.Posteriors,
	}
}

// ObjectAnswers returns the indices of an object's answers (nil when the
// object is unknown). The returned slice is shared and read-only.
func (v *View) ObjectAnswers(key string) []int32 { return v.byObject[key] }

// sourceNamesFor resolves a roster's display names from the dataset.
func sourceNamesFor(ds *model.Dataset, roster []model.SourceID) []string {
	names := make([]string, len(roster))
	for i, id := range roster {
		names[i] = ds.Sources[id].Name
	}
	return names
}

// EngineOptions mirror the execution knobs of the public FuseOptions
// that pick and configure a serving engine. Except for TrustTolerance
// (an explicitly approximate knob) they are execution choices only —
// answers are bit-identical at any setting.
type EngineOptions struct {
	// Parallelism bounds the fusion worker pool (0 = GOMAXPROCS,
	// 1 = serial).
	Parallelism int
	// Shards > 1 selects the sharded engine with that many range shards;
	// 0 or 1 selects the flat engine.
	Shards int
	// MaxResidentShards (with Shards > 1) bounds how many shard arenas
	// stay resident at once (0 = all).
	MaxResidentShards int
	// TrustTolerance > 0 enables the dirty-only warm path on every
	// advance (both engines), falling back to the exact full iteration
	// when any source's trust drifts past it. 0 keeps every advance
	// bit-identical to a full Fuse.
	TrustTolerance float64
	// Planner, when set, plans each advance's execution path from the
	// delta's measured features (see fusion.Planner). The decision lands
	// in every advance's IncrementalStats and is surfaced by /v1/stats.
	Planner *fusion.Planner
}

// NewEngine builds the serving engine the options call for: the flat
// incremental engine for Shards <= 1, the sharded one otherwise. This is
// the single constructor commands should use — the flat-vs-sharded
// branching lives here, not at every call site. Options are assumed
// validated (truthdiscovery.FuseOptions.Validate); out-of-range values
// are clamped, never guessed into a different engine.
func NewEngine(ds *model.Dataset, snap *model.Snapshot, sources []model.SourceID,
	method string, opts EngineOptions) (Engine, error) {
	fo := fusion.Options{Parallelism: opts.Parallelism}
	inc := fusion.IncrementalOptions{TrustTolerance: opts.TrustTolerance, Planner: opts.Planner}
	if opts.Shards > 1 {
		eng, err := NewShardedEngine(ds, snap, sources, method, opts.Shards, opts.MaxResidentShards, fo)
		if err != nil {
			return nil, err
		}
		eng.inc = inc
		return eng, nil
	}
	eng, err := NewFlatEngine(ds, snap, sources, method, fo)
	if err != nil {
		return nil, err
	}
	eng.inc = inc
	return eng, nil
}

// Engine is the fusion backend a Refresher advances across the delta
// stream: the flat incremental engine or the sharded one. Both are exact
// (bit-identical to a full Fuse of each day's snapshot).
type Engine interface {
	// Method returns the fusion method name the engine runs.
	Method() string
	// Roster returns the fused source roster in dense problem order.
	Roster() []model.SourceID
	// Current renders the engine's present answers and result.
	Current(ds *model.Dataset) ([]fusion.Answer, *fusion.Result)
	// Advance moves the engine across one delta.
	Advance(ds *model.Dataset, dl *model.Delta, opts fusion.Options) (fusion.IncrementalStats, error)
}

// FlatEngine serves the flat stateful engine (fusion.State).
type FlatEngine struct {
	st *fusion.State
	// inc are the incremental options (trust tolerance, planner) every
	// Advance runs with; NewEngine sets them from EngineOptions.
	inc fusion.IncrementalOptions
}

// NewFlatEngine fuses the snapshot once and wraps the reusable state.
func NewFlatEngine(ds *model.Dataset, snap *model.Snapshot, sources []model.SourceID,
	method string, opts fusion.Options) (*FlatEngine, error) {
	m, ok := fusion.ByName(method)
	if !ok {
		return nil, fmt.Errorf("serve: unknown fusion method %q", method)
	}
	return &FlatEngine{st: fusion.NewState(ds, snap, sources, m, opts)}, nil
}

func (e *FlatEngine) Method() string           { return e.st.Method().Name() }
func (e *FlatEngine) Roster() []model.SourceID { return e.st.Problem.SourceIDs }
func (e *FlatEngine) Current(ds *model.Dataset) ([]fusion.Answer, *fusion.Result) {
	return fusion.AnswersFor(ds, e.st.Problem, e.st.Result), e.st.Result
}

func (e *FlatEngine) Advance(ds *model.Dataset, dl *model.Delta, opts fusion.Options) (fusion.IncrementalStats, error) {
	next, stats, err := e.st.Advance(ds, dl, opts, e.inc)
	if err != nil {
		return stats, err
	}
	e.st = next
	return stats, nil
}

// ShardedEngine serves the sharded stateful engine (fusion.ShardedState).
type ShardedEngine struct {
	st *fusion.ShardedState
	// inc are the incremental options (trust tolerance, planner) every
	// Advance runs with; NewEngine sets them from EngineOptions.
	inc fusion.IncrementalOptions
}

// NewShardedEngine fuses the snapshot over the shard set and wraps the
// reusable state.
func NewShardedEngine(ds *model.Dataset, snap *model.Snapshot, sources []model.SourceID,
	method string, shards, maxResident int, opts fusion.Options) (*ShardedEngine, error) {
	m, ok := fusion.ByName(method)
	if !ok {
		return nil, fmt.Errorf("serve: unknown fusion method %q", method)
	}
	if shards < 1 {
		shards = 1
	}
	spec := model.RangeShards(shards, snap.NumItems())
	st, err := fusion.NewShardedState(ds, snap, sources, spec, m, opts, maxResident)
	if err != nil {
		return nil, err
	}
	return &ShardedEngine{st: st}, nil
}

func (e *ShardedEngine) Method() string           { return e.st.Method().Name() }
func (e *ShardedEngine) Roster() []model.SourceID { return e.st.Sharded.SourceIDs }
func (e *ShardedEngine) Current(ds *model.Dataset) ([]fusion.Answer, *fusion.Result) {
	return fusion.AnswersForSharded(ds, e.st.Sharded, e.st.Result), e.st.Result
}

func (e *ShardedEngine) Advance(ds *model.Dataset, dl *model.Delta, opts fusion.Options) (fusion.IncrementalStats, error) {
	next, stats, err := e.st.Advance(ds, dl, opts, e.inc)
	if err != nil {
		return stats, err
	}
	e.st = next
	return stats, nil
}
