package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// ClaimOp is one wire-level ingest operation: a source asserting (or
// retracting) its value for one data item, addressed by name. Values are
// the same textual forms the loaders accept (value.Parse for the
// attribute's kind); Retract ops carry no value.
type ClaimOp struct {
	Source    string `json:"source"`
	Object    string `json:"object"`
	Attribute string `json:"attribute"`
	Value     string `json:"value,omitempty"`
	Retract   bool   `json:"retract,omitempty"`
}

// IngestError is a rejection the HTTP layer can translate directly:
// status, a stable machine code, and (for 429) a Retry-After hint.
type IngestError struct {
	Status     int
	Code       string
	Message    string
	RetryAfter string
}

func (e *IngestError) Error() string { return e.Message }

// IngestConfig sizes the batching window and the backpressure bound.
type IngestConfig struct {
	// MaxBatch flushes the pending set once it holds this many distinct
	// (item, source) keys (<= 0: 256).
	MaxBatch int
	// MaxAge flushes a non-empty pending set this long after its oldest
	// op arrived, even below MaxBatch (<= 0: 250ms).
	MaxAge time.Duration
	// MaxPending bounds the pending set; a batch that would push past it
	// is refused whole with 429 + Retry-After (<= 0: 8 * MaxBatch).
	MaxPending int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 250 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 8 * c.MaxBatch
	}
	return c
}

// opKey identifies one (item, source) claim slot — the unit of last-wins
// coalescing inside a batching window.
type opKey struct {
	item model.ItemID
	src  model.SourceID
}

// pendingOp is the latest enqueued operation for one key.
type pendingOp struct {
	retract bool
	val     value.Value
}

// Applier is the engine-side flush contract: advance the fusion state
// over one delta and publish the resulting view. A *Refresher applies it
// to an in-process engine; the distributed coordinator fans the delta to
// its shard workers and re-runs fusion across them.
type Applier interface {
	Apply(dl *model.Delta) (*View, fusion.IncrementalStats, error)
}

// FlushResult resolves one awaited enqueue: the view published by the
// flush that drained it, or the flush error. A nil View with a nil Err
// means the whole batch was a no-op against the base — the currently
// served version already reflects it.
type FlushResult struct {
	View *View
	Err  error
}

// Ingester is the live write path: it validates wire ops against the
// dataset, coalesces them last-wins into a pending set, and flushes the
// set as one model.Delta through the Applier — the exact machinery the
// daily pipeline uses, so a served answer after ingest is bit-identical
// to an offline Fuse over the same claim set.
//
// Concurrency: mu guards the pending set and counters (held only for
// map work, never across a fusion advance); flushMu serializes flushes
// and is the only lock held while the engine advances, so enqueues keep
// landing while a flush fuses.
type Ingester struct {
	cfg IngestConfig
	ds  *model.Dataset
	ref Applier

	// Name-resolution indexes, built once (the dataset's own lookups are
	// linear scans; the hot ingest path needs O(1)).
	srcByName  map[string]model.SourceID
	attrByName map[string]model.AttrID
	objByKey   map[string]model.ObjectID

	mu        sync.Mutex
	pending   map[opKey]pendingOp
	waiters   []chan FlushResult // one per awaited enqueue in the current window
	oldest    time.Time          // arrival of the first op in the current window
	notify    chan struct{}
	closed    bool
	batches   uint64
	ops       uint64
	rejected  uint64
	flushes   uint64
	flushErrs uint64
	noops     uint64
	lastErr   string

	// flushMu serializes flushes; base is the snapshot the engine
	// currently reflects, advanced once per flushed delta.
	flushMu sync.Mutex
	base    *model.Snapshot

	stop context.CancelFunc
	done chan struct{}
}

// NewIngester wires an ingester over an applier's engine. base must be
// the snapshot the engine currently reflects (the refresher's or
// coordinator's day/label); every flush advances both together.
func NewIngester(ds *model.Dataset, ref Applier, base *model.Snapshot, cfg IngestConfig) *Ingester {
	ing := &Ingester{
		cfg:        cfg.withDefaults(),
		ds:         ds,
		ref:        ref,
		base:       base,
		srcByName:  make(map[string]model.SourceID, len(ds.Sources)),
		attrByName: make(map[string]model.AttrID, len(ds.Attrs)),
		objByKey:   make(map[string]model.ObjectID, len(ds.Objects)),
		pending:    make(map[opKey]pendingOp),
		notify:     make(chan struct{}, 1),
	}
	for _, s := range ds.Sources {
		ing.srcByName[s.Name] = s.ID
	}
	for _, a := range ds.Attrs {
		ing.attrByName[a.Name] = a.ID
	}
	for _, o := range ds.Objects {
		ing.objByKey[o.Key] = o.ID
	}
	return ing
}

// resolve validates one wire op into its key and payload. Unknown names
// and malformed values are 400s — the item universe is fixed for the
// stream (deltas cannot grow the item table), so an unknown (object,
// attribute) pair can never become ingestible later.
func (i *Ingester) resolve(op *ClaimOp) (opKey, pendingOp, error) {
	src, ok := i.srcByName[op.Source]
	if !ok {
		return opKey{}, pendingOp{}, &IngestError{Status: http.StatusBadRequest,
			Code: "unknown_source", Message: "unknown source " + op.Source}
	}
	attr, ok := i.attrByName[op.Attribute]
	if !ok {
		return opKey{}, pendingOp{}, &IngestError{Status: http.StatusBadRequest,
			Code: "unknown_attribute", Message: "unknown attribute " + op.Attribute}
	}
	obj, ok := i.objByKey[op.Object]
	if !ok {
		return opKey{}, pendingOp{}, &IngestError{Status: http.StatusBadRequest,
			Code: "unknown_object", Message: "unknown object " + op.Object}
	}
	item, ok := i.ds.LookupItem(obj, attr)
	if !ok {
		return opKey{}, pendingOp{}, &IngestError{Status: http.StatusBadRequest,
			Code: "unknown_item",
			Message: fmt.Sprintf("no data item for (%s, %s); the item universe is fixed per stream",
				op.Object, op.Attribute)}
	}
	key := opKey{item: item, src: src}
	if op.Retract {
		return key, pendingOp{retract: true}, nil
	}
	v, err := value.Parse(i.ds.Attrs[attr].Kind, op.Value)
	if err != nil {
		return opKey{}, pendingOp{}, &IngestError{Status: http.StatusBadRequest,
			Code: "bad_value", Message: fmt.Sprintf("value %q for %s: %v", op.Value, op.Attribute, err)}
	}
	return key, pendingOp{val: v}, nil
}

// Enqueue validates a batch and coalesces it into the pending set
// (last-wins per (item, source) key). The whole batch lands or none of
// it does: a single invalid op rejects it with 400, and a batch that
// would push the pending set past MaxPending is refused with 429. It
// returns the pending-set size after the batch landed.
func (i *Ingester) Enqueue(ops []ClaimOp) (int, error) {
	n, _, err := i.enqueue(ops, false)
	return n, err
}

// EnqueueWait is Enqueue plus a future: the returned channel resolves
// (exactly once) when the flush that drains this batch publishes — or
// fails. An awaited batch also nudges the flusher immediately, so the
// caller never waits out the full batching window.
func (i *Ingester) EnqueueWait(ops []ClaimOp) (int, <-chan FlushResult, error) {
	return i.enqueue(ops, true)
}

func (i *Ingester) enqueue(ops []ClaimOp, wait bool) (int, <-chan FlushResult, error) {
	keys := make([]opKey, len(ops))
	resolved := make([]pendingOp, len(ops))
	for n := range ops {
		k, p, err := i.resolve(&ops[n])
		if err != nil {
			return 0, nil, err
		}
		keys[n], resolved[n] = k, p
	}

	i.mu.Lock()
	defer i.mu.Unlock()
	if i.closed {
		return 0, nil, &IngestError{Status: http.StatusServiceUnavailable,
			Code: "shutting_down", Message: "the server is shutting down; claims are no longer accepted"}
	}
	// Worst-case growth check up front — every key new — so a refused
	// batch leaves the pending set untouched.
	if len(i.pending)+len(ops) > i.cfg.MaxPending {
		i.rejected++
		return len(i.pending), nil, &IngestError{Status: http.StatusTooManyRequests,
			Code:       "ingest_backlog",
			Message:    fmt.Sprintf("%d claims pending and the fusion flusher is behind; retry shortly", len(i.pending)),
			RetryAfter: "1"}
	}
	if len(i.pending) == 0 {
		i.oldest = time.Now()
	}
	for n := range keys {
		i.pending[keys[n]] = resolved[n]
	}
	i.batches++
	i.ops += uint64(len(ops))
	var ch chan FlushResult
	if wait {
		// Buffered: the flush resolves waiters without blocking on a
		// handler that already timed out or lost its client.
		ch = make(chan FlushResult, 1)
		i.waiters = append(i.waiters, ch)
	}
	n := len(i.pending)
	if n >= i.cfg.MaxBatch || wait {
		select {
		case i.notify <- struct{}{}:
		default:
		}
	}
	return n, ch, nil
}

// Start launches the background flusher: it flushes when the pending set
// reaches MaxBatch (signalled by Enqueue) or when the oldest pending op
// exceeds MaxAge. Stop with Close.
func (i *Ingester) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	i.stop = cancel
	i.done = make(chan struct{})
	go func() {
		defer close(i.done)
		// The ticker is the age bound's clock; a quarter-period tick keeps
		// worst-case flush lag at MaxAge * 1.25 without a timer per op.
		tick := i.cfg.MaxAge / 4
		if tick <= 0 {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-i.notify:
				_ = i.Flush()
			case <-t.C:
				i.mu.Lock()
				due := len(i.pending) > 0 && time.Since(i.oldest) >= i.cfg.MaxAge
				i.mu.Unlock()
				if due {
					_ = i.Flush()
				}
			}
		}
	}()
}

// Close stops accepting claims, halts the background flusher, and
// flushes whatever is still pending so shutdown loses nothing.
func (i *Ingester) Close() error {
	i.mu.Lock()
	i.closed = true
	i.mu.Unlock()
	if i.stop != nil {
		i.stop()
		<-i.done
	}
	return i.Flush()
}

// Flush drains the pending set into one delta and applies it through the
// applier, publishing a new served version. A flush that finds nothing
// to change (all ops were no-ops against the base) publishes nothing.
// Every waiter enqueued with the drained batch is resolved exactly once
// — with the published view, the flush error, or a nil view for an
// all-no-op batch.
func (i *Ingester) Flush() error {
	i.flushMu.Lock()
	defer i.flushMu.Unlock()

	i.mu.Lock()
	if len(i.pending) == 0 && len(i.waiters) == 0 {
		i.mu.Unlock()
		return nil
	}
	batch := i.pending
	i.pending = make(map[opKey]pendingOp)
	waiters := i.waiters
	i.waiters = nil
	i.mu.Unlock()
	// Waiters land under the same mu hold as their ops, so draining both
	// together guarantees a waiter's batch is in the delta it awaits.
	resolve := func(fr FlushResult) {
		for _, ch := range waiters {
			ch <- fr
		}
	}

	dl, noops := i.buildDelta(batch)
	if dl.Empty() {
		i.mu.Lock()
		i.noops += uint64(noops)
		i.mu.Unlock()
		resolve(FlushResult{})
		return nil
	}
	next, err := i.base.Apply(dl)
	var v *View
	if err == nil {
		v, _, err = i.ref.Apply(dl)
	}
	i.mu.Lock()
	if err != nil {
		// The batch is lost (it was built against a base the engine no
		// longer reflects, or the engine refused it); record the failure
		// loudly rather than retrying into the same mismatch forever.
		i.flushErrs++
		i.lastErr = err.Error()
		i.mu.Unlock()
		err = fmt.Errorf("serve: ingest flush: %w", err)
		resolve(FlushResult{Err: err})
		return err
	}
	i.base = next
	i.flushes++
	i.noops += uint64(noops)
	i.lastErr = ""
	i.mu.Unlock()
	resolve(FlushResult{View: v})
	return nil
}

// buildDelta turns one coalesced batch into a sorted delta against the
// current base snapshot. Ops that change nothing — retracting an absent
// claim, re-asserting the identical value — are dropped and counted.
func (i *Ingester) buildDelta(batch map[opKey]pendingOp) (*model.Delta, int) {
	keys := make([]opKey, 0, len(batch))
	for k := range batch {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].item != keys[b].item {
			return keys[a].item < keys[b].item
		}
		return keys[a].src < keys[b].src
	})

	dl := &model.Delta{
		FromDay:   i.base.Day,
		ToDay:     i.base.Day + 1,
		FromLabel: i.base.Label,
		ToLabel:   fmt.Sprintf("live-%d", i.base.Day+1),
		NumItems:  i.base.NumItems(),
	}
	noops := 0
	for _, k := range keys {
		op := batch[k]
		existing, found := i.claimAt(k)
		switch {
		case op.retract && found:
			dl.Retracted = append(dl.Retracted, existing)
		case op.retract:
			noops++ // retracting a claim that is not there
		case found && existing.Val == op.val:
			noops++ // re-asserting the identical value
		case found:
			next := existing
			next.Val = op.val
			next.Cause = model.CauseNone
			next.CopiedFrom = model.NoSource
			dl.Changed = append(dl.Changed, model.ValueChange{Old: existing, New: next})
		default:
			dl.Added = append(dl.Added, model.Claim{
				Source: k.src, Item: k.item, Val: op.val,
				Cause: model.CauseNone, CopiedFrom: model.NoSource,
			})
		}
	}
	// Ops were emitted in (item, source) order and the three lists are
	// disjoint by construction, so the Diff invariant holds.
	dl.MarkSorted()
	return dl, noops
}

// claimAt finds the base snapshot's claim for one (item, source) key by
// binary search over the item's sorted claim range.
func (i *Ingester) claimAt(k opKey) (model.Claim, bool) {
	claims := i.base.ItemClaims(k.item)
	n := sort.Search(len(claims), func(j int) bool { return claims[j].Source >= k.src })
	if n < len(claims) && claims[n].Source == k.src {
		return claims[n], true
	}
	return model.Claim{}, false
}

// Base returns the snapshot the engine currently reflects (advances once
// per flushed delta). Exposed for tests and the offline-equivalence
// check.
func (i *Ingester) Base() *model.Snapshot {
	i.flushMu.Lock()
	defer i.flushMu.Unlock()
	return i.base
}

// Stats renders the ingest counters for /v1/stats.
func (i *Ingester) Stats() map[string]any {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := map[string]any{
		"enabled":      true,
		"pending":      len(i.pending),
		"batches":      i.batches,
		"ops":          i.ops,
		"rejected_429": i.rejected,
		"flushes":      i.flushes,
		"flush_errors": i.flushErrs,
		"noops":        i.noops,
		"max_batch":    i.cfg.MaxBatch,
		"max_pending":  i.cfg.MaxPending,
	}
	if i.lastErr != "" {
		out["last_error"] = i.lastErr
	}
	return out
}
