package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// randomRun builds a run with adversarial payloads: negative zero, NaN,
// denormals, empty-vs-nil slices, multi-byte strings.
func randomRun(rng *rand.Rand) *Run {
	weird := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.MaxFloat64, 0.1, 1e300}
	f := func() float64 { return weird[rng.Intn(len(weird))] }

	nSrc := rng.Intn(6)
	run := &Run{
		Method:      "AccuPr",
		Fingerprint: "deadbeef01234567",
		Day:         rng.Intn(100) - 3,
		Label:       "day-λ/" + strings.Repeat("x", rng.Intn(5)),
		CreatedUnix: rng.Int63(),
	}
	run.SourceIDs = make([]model.SourceID, nSrc)
	run.SourceNames = make([]string, nSrc)
	for i := range run.SourceIDs {
		run.SourceIDs[i] = model.SourceID(rng.Intn(1000))
		run.SourceNames[i] = strings.Repeat("sᛗ", i)
	}
	if rng.Intn(3) > 0 {
		run.Trust = make([]float64, nSrc)
		for i := range run.Trust {
			run.Trust[i] = f()
		}
	}
	if rng.Intn(3) == 0 {
		run.AttrTrust = make([][]float64, nSrc)
		for i := range run.AttrTrust {
			if rng.Intn(4) == 0 {
				continue // nil row
			}
			run.AttrTrust[i] = []float64{f(), f()}
		}
	}
	nAns := rng.Intn(20)
	run.Answers = make([]fusion.Answer, nAns)
	kinds := []value.Kind{value.Number, value.Time, value.Text}
	for i := range run.Answers {
		k := kinds[rng.Intn(len(kinds))]
		v := value.Value{Kind: k}
		if k == value.Text {
			v.Text = "B" + strings.Repeat("2", rng.Intn(4))
		} else {
			v.Num = f()
			v.Gran = []float64{0, 1, 1e5}[rng.Intn(3)]
		}
		run.Answers[i] = fusion.Answer{
			Item:      model.ItemID(i),
			ObjectKey: "obj" + strings.Repeat("й", rng.Intn(3)),
			Attribute: "price",
			Value:     v,
			Support:   rng.Intn(50),
			Providers: rng.Intn(60),
		}
	}
	if rng.Intn(2) == 0 {
		run.Posteriors = make([][]float64, nAns)
		for i := range run.Posteriors {
			row := make([]float64, rng.Intn(4))
			for j := range row {
				row[j] = f()
			}
			if len(row) > 0 || rng.Intn(2) == 0 {
				run.Posteriors[i] = row
			}
		}
	}
	return run
}

// sameFloats compares float slices by their IEEE bits — NaNs and signed
// zeros must survive exactly, which rules out ==.
func sameFloats(t *testing.T, ctx string, want, got []float64) {
	t.Helper()
	if (want == nil) != (got == nil) || len(want) != len(got) {
		t.Fatalf("%s: %v vs %v", ctx, want, got)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: bits %x vs %x", ctx, i, math.Float64bits(want[i]), math.Float64bits(got[i]))
		}
	}
}

func sameFloatRows(t *testing.T, ctx string, want, got [][]float64) {
	t.Helper()
	if (want == nil) != (got == nil) || len(want) != len(got) {
		t.Fatalf("%s: %d rows vs %d (nil %v vs %v)", ctx, len(want), len(got), want == nil, got == nil)
	}
	for i := range want {
		sameFloats(t, fmt.Sprintf("%s[%d]", ctx, i), want[i], got[i])
	}
}

// sameRun compares two runs bit-for-bit: every float by its IEEE bits,
// everything else structurally.
func sameRun(t *testing.T, want, got *Run) {
	t.Helper()
	if want.Version != got.Version || want.Method != got.Method ||
		want.Fingerprint != got.Fingerprint || want.Day != got.Day ||
		want.Label != got.Label || want.CreatedUnix != got.CreatedUnix {
		t.Fatalf("header differs:\nwant %+v\ngot  %+v", want, got)
	}
	if !reflect.DeepEqual(want.SourceIDs, got.SourceIDs) || !reflect.DeepEqual(want.SourceNames, got.SourceNames) {
		t.Fatalf("roster differs:\nwant %v %v\ngot  %v %v", want.SourceIDs, want.SourceNames, got.SourceIDs, got.SourceNames)
	}
	sameFloats(t, "trust", want.Trust, got.Trust)
	sameFloatRows(t, "attrTrust", want.AttrTrust, got.AttrTrust)
	if len(want.Answers) != len(got.Answers) {
		t.Fatalf("answer count %d vs %d", len(want.Answers), len(got.Answers))
	}
	for i := range want.Answers {
		w, g := &want.Answers[i], &got.Answers[i]
		if w.Item != g.Item || w.ObjectKey != g.ObjectKey || w.Attribute != g.Attribute ||
			w.Support != g.Support || w.Providers != g.Providers ||
			w.Value.Kind != g.Value.Kind || w.Value.Text != g.Value.Text ||
			math.Float64bits(w.Value.Num) != math.Float64bits(g.Value.Num) ||
			math.Float64bits(w.Value.Gran) != math.Float64bits(g.Value.Gran) {
			t.Fatalf("answer %d differs: %+v vs %+v", i, *w, *g)
		}
	}
	sameFloatRows(t, "posteriors", want.Posteriors, got.Posteriors)
}

// TestRoundTripProperty: encode → decode is the identity for randomized
// runs, including NaN/Inf/-0 payloads whose bits must survive.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		run := randomRun(rng)
		run.Version = uint64(i)
		got, err := decode(encode(run))
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		sameRun(t, run, got)
	}
}

// TestNegativeZeroBits: DeepEqual treats -0 == 0, so assert the sign bit
// explicitly — "bit-identical" must mean the bits.
func TestNegativeZeroBits(t *testing.T) {
	run := &Run{Method: "Vote", Trust: []float64{math.Copysign(0, -1)}}
	got, err := decode(encode(run))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got.Trust[0]) != math.Float64bits(run.Trust[0]) {
		t.Fatalf("sign of zero lost: %x vs %x",
			math.Float64bits(got.Trust[0]), math.Float64bits(run.Trust[0]))
	}
}

// TestSaveLoadVersioning: versions are assigned monotonically, CURRENT
// tracks the latest, and every version loads back identical.
func TestSaveLoadVersioning(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if run, err := s.LoadCurrent(); err != nil || run != nil {
		t.Fatalf("empty store: run %v err %v", run, err)
	}
	rng := rand.New(rand.NewSource(11))
	var saved []*Run
	for i := 0; i < 5; i++ {
		run := randomRun(rng)
		v, err := s.Save(run)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint64(i+1) || run.Version != v {
			t.Fatalf("save %d assigned version %d (run says %d)", i, v, run.Version)
		}
		saved = append(saved, run)
	}
	versions, err := s.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 5 || versions[0] != 1 || versions[4] != 5 {
		t.Fatalf("versions %v", versions)
	}
	cur, err := s.LoadCurrent()
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, saved[4], cur)
	for i, want := range saved {
		got, err := s.Load(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		sameRun(t, want, got)
	}
}

// TestCorruptionRejected: a flipped byte anywhere in the file fails the
// checksum; truncation fails cleanly too.
func TestCorruptionRejected(t *testing.T) {
	run := randomRun(rand.New(rand.NewSource(3)))
	run.Version = 9
	data := encode(run)
	for _, off := range []int{0, 5, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x40
		if _, err := decode(bad); err == nil {
			t.Fatalf("corruption at offset %d not detected", off)
		}
	}
	for _, n := range []int{0, 3, len(data) / 3, len(data) - 1} {
		if _, err := decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

// TestSaveIsAtomic: a Save leaves no temp debris and an interrupted write
// (simulated by a stray .tmp) never shadows a committed run.
func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	run := randomRun(rand.New(rand.NewSource(5)))
	if _, err := s.Save(run); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp debris after Save: %s", e.Name())
		}
	}
	// A crashed writer's partial temp file must not affect readers.
	if err := os.WriteFile(filepath.Join(dir, ".run-junk.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCurrent()
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, run, got)
}

// TestPrune keeps the newest runs and never the current one.
func TestPrune(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 6; i++ {
		if _, err := s.Save(randomRun(rng)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Prune(2); err != nil {
		t.Fatal(err)
	}
	versions, err := s.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[0] != 5 || versions[1] != 6 {
		t.Fatalf("after prune: %v", versions)
	}
	if _, err := s.LoadCurrent(); err != nil {
		t.Fatal(err)
	}
}
