// Package store persists fused runs — answers, trust vectors, posteriors
// and the method/options fingerprint — as versioned, atomically written
// files, and loads them back bit-identically.
//
// The paper's end product is a continuously queried answer table rebuilt
// by a daily fusion pipeline; this package is the boundary between the
// pipeline and the serving layer (internal/serve): the pipeline Saves a
// Run per day, the server loads the current Run at startup and swaps to
// each new version as it lands.
//
// Layout: a store is one directory holding run files named
// run-<version>.tdr (version is a monotonically increasing uint64,
// assigned by Save) plus a CURRENT file naming the latest run file. Both
// are written to a temporary file in the same directory, synced and
// renamed into place, so a reader never observes a partial file and a
// crashed writer leaves at most a stray .tmp. Every run file carries a
// format version and a CRC-32C of its contents; Load rejects truncated or
// corrupted files instead of serving garbage.
//
// All floating-point payloads (trust, posteriors, numeric values) are
// stored as raw IEEE-754 bits, so a loaded run compares bit-identical to
// the fusion output that produced it — the property the serving
// equivalence tests assert end to end.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// Run is one persisted fusion run: everything the serving layer needs to
// answer queries without re-fusing — or re-reading — the raw claims.
type Run struct {
	// Version is the store-assigned monotonic version (0 until Saved).
	Version uint64
	// Method is the fusion method name; Fingerprint the method/options
	// digest (truthdiscovery.FuseOptions.Fingerprint) identifying the
	// configuration that produced the answers.
	Method      string
	Fingerprint string
	// Day and Label identify the snapshot the run fused.
	Day   int
	Label string
	// CreatedUnix is the Save wall-clock time (Unix seconds).
	CreatedUnix int64

	// SourceIDs is the fused roster in problem (dense) order and
	// SourceNames the matching display names; Trust and AttrTrust are
	// indexed by the same dense order. Trust is nil for trust-free
	// methods (VOTE).
	SourceIDs   []model.SourceID
	SourceNames []string
	Trust       []float64
	AttrTrust   [][]float64

	// Answers is one fused answer per claimed item, in item order.
	Answers []fusion.Answer
	// Posteriors holds the per-item per-bucket value probabilities for
	// methods that compute them (nil rows allowed).
	Posteriors [][]float64
}

// Store is a directory of versioned runs.
type Store struct {
	dir string
}

// ETag renders a store version as the strong HTTP entity tag the serving
// layer stamps on every cacheable response built from that version. The
// version number is the perfect cache key: it changes exactly when a new
// run is persisted and swapped in, so If-None-Match revalidation costs
// one integer comparison and never serves a stale answer. The hex form
// matches the run file naming (run-<version>.tdr), making an ETag
// traceable to the file that backs it.
func ETag(version uint64) string {
	return fmt.Sprintf("%q", runPrefix+strconv.FormatUint(version, 16))
}

const (
	magic         = "TDSR"
	formatVersion = 1
	currentName   = "CURRENT"
	runPrefix     = "run-"
	runSuffix     = ".tdr"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// runFile returns the file name of a version.
func runFile(version uint64) string {
	return fmt.Sprintf("%s%016x%s", runPrefix, version, runSuffix)
}

// Versions returns the stored run versions in ascending order.
func (s *Store) Versions() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var versions []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, runPrefix) || !strings.HasSuffix(name, runSuffix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, runPrefix), runSuffix), 16, 64)
		if err != nil {
			continue // not a run file
		}
		versions = append(versions, v)
	}
	sort.Slice(versions, func(a, b int) bool { return versions[a] < versions[b] })
	return versions, nil
}

// Save persists the run as the next version and atomically points CURRENT
// at it. The run's Version field is stamped with the assigned version,
// which is also returned.
func (s *Store) Save(run *Run) (uint64, error) {
	versions, err := s.Versions()
	if err != nil {
		return 0, err
	}
	next := uint64(1)
	if n := len(versions); n > 0 {
		next = versions[n-1] + 1
	}
	run.Version = next

	if err := s.writeAtomic(runFile(next), encode(run)); err != nil {
		return 0, err
	}
	if err := s.writeAtomic(currentName, []byte(runFile(next)+"\n")); err != nil {
		return 0, err
	}
	return next, nil
}

// SaveAt persists the run under an explicit version and points CURRENT at
// it. This is the distributed workers' save path: the coordinator owns
// version numbering, so every worker's store must carry the coordinator's
// version for the same published round (the version-keyed ETags then agree
// across the fleet). A run already stored at that version is overwritten —
// republishing after a worker reattach is idempotent.
func (s *Store) SaveAt(run *Run, version uint64) error {
	if version == 0 {
		return fmt.Errorf("store: SaveAt needs a positive version")
	}
	run.Version = version
	if err := s.writeAtomic(runFile(version), encode(run)); err != nil {
		return err
	}
	return s.writeAtomic(currentName, []byte(runFile(version)+"\n"))
}

// writeAtomic writes data to name via a same-directory temp file, fsync
// and rename, so concurrent readers see either the old file or the new.
func (s *Store) writeAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, "."+name+"-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The rename itself must survive a crash too: without a directory
	// fsync the new entry (or the run file CURRENT names) can be lost
	// while later writes persist.
	dir, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", s.dir, err)
	}
	return nil
}

// Current returns the version CURRENT points at; ok is false for an empty
// store.
func (s *Store) Current() (version uint64, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(s.dir, currentName))
	if os.IsNotExist(err) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	name := strings.TrimSpace(string(data))
	if !strings.HasPrefix(name, runPrefix) || !strings.HasSuffix(name, runSuffix) {
		return 0, false, fmt.Errorf("store: CURRENT names %q, not a run file", name)
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, runPrefix), runSuffix), 16, 64)
	if err != nil {
		return 0, false, fmt.Errorf("store: CURRENT names %q: %w", name, err)
	}
	return v, true, nil
}

// Load reads one version back, verifying format and checksum.
func (s *Store) Load(version uint64) (*Run, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, runFile(version)))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	run, err := decode(data)
	if err != nil {
		return nil, fmt.Errorf("store: %s: %w", runFile(version), err)
	}
	if run.Version != version {
		return nil, fmt.Errorf("store: %s carries version %d", runFile(version), run.Version)
	}
	return run, nil
}

// LoadCurrent loads the version CURRENT points at; a nil Run (and nil
// error) means the store is empty.
func (s *Store) LoadCurrent() (*Run, error) {
	v, ok, err := s.Current()
	if err != nil || !ok {
		return nil, err
	}
	return s.Load(v)
}

// Prune removes all but the newest keep runs (CURRENT is never removed).
// keep < 1 is treated as 1.
func (s *Store) Prune(keep int) error {
	if keep < 1 {
		keep = 1
	}
	versions, err := s.Versions()
	if err != nil {
		return err
	}
	cur, hasCur, err := s.Current()
	if err != nil {
		return err
	}
	if len(versions) <= keep {
		return nil
	}
	for _, v := range versions[:len(versions)-keep] {
		if hasCur && v == cur {
			continue
		}
		if err := os.Remove(filepath.Join(s.dir, runFile(v))); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// --- binary encoding -------------------------------------------------

// enc accumulates the little-endian body of a run file.
type enc struct{ buf []byte }

func (e *enc) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// floats encodes a float slice with a nil/non-nil marker, preserving the
// nil-vs-empty distinction (Trust is nil for VOTE).
func (e *enc) floats(xs []float64) {
	if xs == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(xs)))
	for _, x := range xs {
		e.f64(x)
	}
}

func (e *enc) floatRows(rows [][]float64) {
	if rows == nil {
		e.u8(0)
		return
	}
	e.u8(1)
	e.u32(uint32(len(rows)))
	for _, r := range rows {
		e.floats(r)
	}
}

// encode renders the full run file: magic, format, body, CRC-32C.
func encode(run *Run) []byte {
	e := &enc{buf: make([]byte, 0, 64+len(run.Answers)*48)}
	e.buf = append(e.buf, magic...)
	e.u32(formatVersion)
	e.u64(run.Version)
	e.str(run.Method)
	e.str(run.Fingerprint)
	e.i64(int64(run.Day))
	e.str(run.Label)
	e.i64(run.CreatedUnix)

	e.u32(uint32(len(run.SourceIDs)))
	for i, id := range run.SourceIDs {
		e.u32(uint32(id))
		e.str(run.SourceNames[i])
	}
	e.floats(run.Trust)
	e.floatRows(run.AttrTrust)

	e.u32(uint32(len(run.Answers)))
	for i := range run.Answers {
		a := &run.Answers[i]
		e.u32(uint32(a.Item))
		e.str(a.ObjectKey)
		e.str(a.Attribute)
		e.u8(uint8(a.Value.Kind))
		e.f64(a.Value.Num)
		e.str(a.Value.Text)
		e.f64(a.Value.Gran)
		e.u32(uint32(a.Support))
		e.u32(uint32(a.Providers))
	}
	e.floatRows(run.Posteriors)

	e.u32(crc32.Checksum(e.buf, castagnoli))
	return e.buf
}

// dec is the cursor decode reads the body through; errors latch.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("truncated at offset %d (want %d bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64() int64   { return int64(d.u64()) }
func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return ""
	}
	return string(d.take(n))
}

func (d *dec) floats() []float64 {
	if d.u8() == 0 {
		return nil
	}
	n := int(d.u32())
	if d.err == nil && n > (len(d.buf)-d.off)/8 {
		d.fail("float count %d exceeds remaining bytes", n)
		return nil
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.f64()
	}
	return xs
}

func (d *dec) floatRows() [][]float64 {
	if d.u8() == 0 {
		return nil
	}
	n := int(d.u32())
	if d.err == nil && n > len(d.buf)-d.off {
		d.fail("row count %d exceeds remaining bytes", n)
		return nil
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = d.floats()
	}
	return rows
}

// decode parses and verifies one run file.
func decode(data []byte) (*Run, error) {
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("file too short (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic %q", data[:len(magic)])
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.Checksum(body, castagnoli); got != sum {
		return nil, fmt.Errorf("checksum mismatch (file %08x, computed %08x)", sum, got)
	}

	d := &dec{buf: body, off: len(magic)}
	if fv := d.u32(); fv != formatVersion {
		return nil, fmt.Errorf("unsupported format version %d", fv)
	}
	run := &Run{
		Version:     d.u64(),
		Method:      d.str(),
		Fingerprint: d.str(),
		Day:         int(d.i64()),
		Label:       d.str(),
		CreatedUnix: d.i64(),
	}

	nSrc := int(d.u32())
	if d.err == nil && nSrc > len(d.buf)-d.off {
		d.fail("source count %d exceeds remaining bytes", nSrc)
	}
	if d.err == nil {
		run.SourceIDs = make([]model.SourceID, nSrc)
		run.SourceNames = make([]string, nSrc)
		for i := 0; i < nSrc && d.err == nil; i++ {
			run.SourceIDs[i] = model.SourceID(d.u32())
			run.SourceNames[i] = d.str()
		}
	}
	run.Trust = d.floats()
	run.AttrTrust = d.floatRows()

	nAns := int(d.u32())
	if d.err == nil && nAns > len(d.buf)-d.off {
		d.fail("answer count %d exceeds remaining bytes", nAns)
	}
	if d.err == nil {
		run.Answers = make([]fusion.Answer, nAns)
		for i := 0; i < nAns && d.err == nil; i++ {
			a := &run.Answers[i]
			a.Item = model.ItemID(d.u32())
			a.ObjectKey = d.str()
			a.Attribute = d.str()
			a.Value = value.Value{
				Kind: value.Kind(d.u8()),
				Num:  d.f64(),
				Text: d.str(),
				Gran: d.f64(),
			}
			a.Support = int(d.u32())
			a.Providers = int(d.u32())
		}
	}
	run.Posteriors = d.floatRows()

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%d trailing bytes", len(d.buf)-d.off)
	}
	return run, nil
}
