package truthdiscovery

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"truthdiscovery/internal/datagen"
	"truthdiscovery/internal/dist"
	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/serve"
	"truthdiscovery/internal/store"
	"truthdiscovery/internal/value"
)

// The distributed serving contract (ISSUE 7): a coordinator driving
// shard-worker processes behind the scatter-gather router serves answers
// bit-identical to a direct public Fuse of the same snapshot — at any
// worker count, including after live claim ingest, and again after a
// worker restarts and reattaches. CI runs this file under -race.

// distEquivMethods samples the families the distributed driver supports:
// item-local, iterative-similarity, Bayesian, per-attribute Bayesian.
var distEquivMethods = []string{"Vote", "AccuPr", "AccuFormatAttr"}

// routedFleet is a two-worker distributed serving stack on loopback
// HTTP: shard workers behind httptest servers, the scatter-gather router
// fronting them, the coordinator wired as the ingest applier.
type routedFleet struct {
	ds      *model.Dataset
	snap    *model.Snapshot
	spec    model.ShardSpec
	bounds  []int
	fp      string
	method  fusion.Method
	workers []*dist.Worker
	servers []*httptest.Server
	peers   []*dist.PeerClient
	stores  []string
	rt      *serve.Router
	coord   *dist.Coordinator
	ing     *serve.Ingester
	front   *httptest.Server
}

// distEquivWorld is a reduced but calibrated Stock world — small enough
// that every method fuses in milliseconds over HTTP, large enough that
// both workers own claimed items.
func distEquivWorld(t *testing.T) (*model.Dataset, *model.Snapshot) {
	t.Helper()
	cfg := datagen.DefaultStockConfig(3)
	cfg.Stocks = 60
	cfg.GoldSymbols = 30
	cfg.Days = 2
	gen := datagen.NewStock(cfg)
	ds := gen.Dataset()
	snap := gen.Snapshot(1)
	ds.AddSnapshot(snap)
	ds.ComputeTolerances(value.DefaultAlpha, snap)
	return ds, snap
}

// newRoutedFleet boots the full stack: workers → router → coordinator →
// ingester, runs the first fused version and fronts it all with one
// httptest server speaking the routed /v1 API.
func newRoutedFleet(t *testing.T, ds *model.Dataset, snap *model.Snapshot, method string, withStores bool) *routedFleet {
	t.Helper()
	m, ok := fusion.ByName(method)
	if !ok {
		t.Fatalf("unknown method %s", method)
	}
	fl := &routedFleet{
		ds:     ds,
		snap:   snap,
		spec:   model.RangeShards(4, len(ds.Items)),
		bounds: []int{0, 2, 4},
		fp:     FuseOptions{}.Fingerprint(method),
		method: m,
	}
	addrs := make([]string, len(fl.bounds)-1)
	for w := 0; w+1 < len(fl.bounds); w++ {
		var st *store.Store
		if withStores {
			dir := t.TempDir()
			fl.stores = append(fl.stores, dir)
			var err error
			if st, err = store.Open(dir); err != nil {
				t.Fatal(err)
			}
		}
		wk, err := dist.NewWorker(dist.WorkerConfig{
			DS: ds, Snap: snap, Spec: fl.spec,
			Lo: fl.bounds[w], Hi: fl.bounds[w+1], Index: w,
			Method: m, Fingerprint: fl.fp, Store: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(wk.Handler())
		t.Cleanup(ts.Close)
		fl.workers = append(fl.workers, wk)
		fl.servers = append(fl.servers, ts)
		fl.peers = append(fl.peers, dist.NewPeerClient(ts.URL))
		addrs[w] = ts.URL
	}
	rt, err := serve.NewRouter(ds, fl.spec, fl.bounds, addrs)
	if err != nil {
		t.Fatal(err)
	}
	fl.rt = rt
	fl.coord = dist.NewCoordinator(dist.CoordinatorConfig{
		DS: ds, Spec: fl.spec, Method: m, Fingerprint: fl.fp,
		Base: snap, Srv: rt.Server(), OnPublish: rt.SetWorkerVersion,
	}, fl.peers)
	if err := fl.coord.Init(); err != nil {
		t.Fatal(err)
	}
	rt.Server().SetExtraStats(func() map[string]any {
		return map[string]any{"coordinator": fl.coord.Stats(), "router": rt.Stats()}
	})
	fl.ing = serve.NewIngester(ds, fl.coord, snap, serve.IngestConfig{MaxBatch: 1 << 20})
	rt.Server().SetIngester(fl.ing)
	if _, err := fl.coord.RunAndPublish(); err != nil {
		t.Fatal(err)
	}
	fl.front = httptest.NewServer(rt.Handler())
	t.Cleanup(fl.front.Close)
	return fl
}

// getRouted decodes one routed GET, asserting the status.
func getRouted(t *testing.T, ts *httptest.Server, path string, wantStatus int, out any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
	return resp
}

// TestRoutedBitIdenticalToFuse: per method, the routed fleet's merged
// /v1/answers equal a direct public Fuse to the bit, and point queries
// answer from the owning worker with exactly that object's slice.
func TestRoutedBitIdenticalToFuse(t *testing.T) {
	ds, snap := distEquivWorld(t)
	for _, method := range distEquivMethods {
		t.Run(method, func(t *testing.T) {
			want, err := Fuse(ds, snap, method, FuseOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fl := newRoutedFleet(t, ds, snap, method, false)

			var got wirePayload
			resp := getRouted(t, fl.front, "/v1/answers", http.StatusOK, &got)
			if got.Version != 1 {
				t.Fatalf("routed version %d, want 1", got.Version)
			}
			sameWireAnswers(t, method+" routed /v1/answers", got.Answers, want)

			// The merged payload carries a fleet-consistent strong ETag.
			etag := resp.Header.Get("ETag")
			if etag == "" {
				t.Fatal("routed answers carry no ETag")
			}
			req, _ := http.NewRequest(http.MethodGet, fl.front.URL+"/v1/answers", nil)
			req.Header.Set("If-None-Match", etag)
			cond, err := fl.front.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			cond.Body.Close()
			if cond.StatusCode != http.StatusNotModified {
				t.Fatalf("conditional routed GET: status %d, want 304", cond.StatusCode)
			}

			// Point queries: first, a middle and the last object — which
			// span both workers — return exactly that object's answers.
			keys := []string{want[0].ObjectKey, want[len(want)/2].ObjectKey, want[len(want)-1].ObjectKey}
			for _, key := range keys {
				var sub []Answer
				for _, a := range want {
					if a.ObjectKey == key {
						sub = append(sub, a)
					}
				}
				var one wirePayload
				getRouted(t, fl.front, "/v1/answers/"+key, http.StatusOK, &one)
				sameWireAnswers(t, method+" routed object "+key, one.Answers, sub)
			}

			// An unknown object is a routed 404 envelope, not a fan-out.
			var env struct {
				Error struct {
					Code string `json:"code"`
				} `json:"error"`
			}
			getRouted(t, fl.front, "/v1/answers/no-such-object", http.StatusNotFound, &env)
			if env.Error.Code != "unknown_object" {
				t.Fatalf("unknown object code %q, want unknown_object", env.Error.Code)
			}
		})
	}
}

// TestRoutedStatsTopology: the routed /v1/stats carries the stable
// topology object plus the coordinator and router counter groups.
func TestRoutedStatsTopology(t *testing.T) {
	ds, snap := distEquivWorld(t)
	fl := newRoutedFleet(t, ds, snap, "Vote", false)
	var stats map[string]any
	getRouted(t, fl.front, "/v1/stats", http.StatusOK, &stats)
	topo, ok := stats["topology"].(map[string]any)
	if !ok {
		t.Fatalf("stats have no topology object: %v", stats)
	}
	if topo["mode"] != "distributed" || topo["kind"] != "range" || topo["shards"] != float64(4) {
		t.Fatalf("topology %v, want distributed/range over 4 shards", topo)
	}
	workers, ok := topo["workers"].([]any)
	if !ok || len(workers) != 2 {
		t.Fatalf("topology lists %d workers, want 2", len(workers))
	}
	for i, w := range workers {
		row := w.(map[string]any)
		if row["healthy"] != true || row["version"] != float64(1) {
			t.Fatalf("worker %d row %v, want healthy at version 1", i, row)
		}
	}
	if _, ok := stats["coordinator"].(map[string]any); !ok {
		t.Fatalf("stats have no coordinator group: %v", stats)
	}
	if _, ok := stats["router"].(map[string]any); !ok {
		t.Fatalf("stats have no router group: %v", stats)
	}
}

// TestRoutedIngestWaitBitIdentical: claims POSTed with ?wait=1 block
// until the fleet publishes, answer 200 with the published version and
// ETag, and the routed answers afterwards are bit-identical to a direct
// public Fuse of the advanced snapshot.
func TestRoutedIngestWaitBitIdentical(t *testing.T) {
	ds, snap := distEquivWorld(t)
	method := "AccuPr"
	fl := newRoutedFleet(t, ds, snap, method, false)
	fl.ing.Start()
	t.Cleanup(func() { _ = fl.ing.Close() })

	// Mutations across the claim table — spanning both workers' shards.
	var ops []serve.ClaimOp
	for ci := 0; ci < len(snap.Claims) && len(ops) < 120; ci += 5 {
		c := &snap.Claims[ci]
		it := ds.Items[c.Item]
		ops = append(ops, serve.ClaimOp{
			Source:    ds.Sources[c.Source].Name,
			Object:    ds.Objects[it.Object].Key,
			Attribute: ds.Attrs[it.Attr].Name,
			Value:     fmt.Sprintf("%.2f", float64(10+len(ops)%90)+0.25),
		})
	}
	if len(ops) < 60 {
		t.Fatalf("only %d mutations", len(ops))
	}
	body, err := json.Marshal(map[string]any{"claims": ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := fl.front.Client().Post(fl.front.URL+"/v1/claims?wait=1",
		"application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack struct {
		Accepted int    `json:"accepted"`
		Version  uint64 `json:"version"`
		ETag     string `json:"etag"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("awaited claims post: status %d, want 200", resp.StatusCode)
	}
	if ack.Accepted != len(ops) || ack.Version != 2 {
		t.Fatalf("awaited ack %+v, want %d accepted at version 2", ack, len(ops))
	}
	if ack.ETag == "" || ack.ETag != resp.Header.Get("ETag") {
		t.Fatalf("awaited ack etag %q vs header %q", ack.ETag, resp.Header.Get("ETag"))
	}

	// The fleet now serves the advanced snapshot: routed answers are a
	// direct public Fuse of the ingester's base, to the bit, and the
	// awaited ETag is the one the read path serves.
	want, err := Fuse(ds, fl.ing.Base(), method, FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var got wirePayload
	read := getRouted(t, fl.front, "/v1/answers", http.StatusOK, &got)
	if got.Version != 2 {
		t.Fatalf("routed version %d after awaited ingest, want 2", got.Version)
	}
	if read.Header.Get("ETag") != ack.ETag {
		t.Fatalf("read ETag %q, awaited ETag %q", read.Header.Get("ETag"), ack.ETag)
	}
	sameWireAnswers(t, "routed post-ingest /v1/answers", got.Answers, want)
}

// TestRoutedWorkerRestart: killing a worker turns routed reads into
// enveloped 503s; a replacement process resumed from the worker's store
// reattaches, and the fleet serves bit-identical answers again.
func TestRoutedWorkerRestart(t *testing.T) {
	ds, snap := distEquivWorld(t)
	method := "Vote"
	want, err := Fuse(ds, snap, method, FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fl := newRoutedFleet(t, ds, snap, method, true)

	var got wirePayload
	getRouted(t, fl.front, "/v1/answers", http.StatusOK, &got)
	sameWireAnswers(t, "routed pre-restart", got.Answers, want)

	// Kill worker 1. The next scatter fails with the worker_unavailable
	// envelope and the topology row flips unhealthy.
	fl.servers[1].Close()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	getRouted(t, fl.front, "/v1/answers", http.StatusServiceUnavailable, &env)
	if env.Error.Code != "worker_unavailable" || !strings.Contains(env.Error.Message, "worker 1") {
		t.Fatalf("down-worker envelope %+v, want worker_unavailable naming worker 1", env)
	}
	var stats map[string]any
	getRouted(t, fl.front, "/v1/stats", http.StatusOK, &stats)
	row := stats["topology"].(map[string]any)["workers"].([]any)[1].(map[string]any)
	if row["healthy"] != false {
		t.Fatalf("worker 1 topology row %v, want unhealthy", row)
	}

	// Respawn worker 1 from the genesis snapshot and its store; the
	// warm-start serves the persisted local run before reattachment.
	st, err := store.Open(fl.stores[1])
	if err != nil {
		t.Fatal(err)
	}
	wk, err := dist.NewWorker(dist.WorkerConfig{
		DS: ds, Snap: snap, Spec: fl.spec,
		Lo: fl.bounds[1], Hi: fl.bounds[2], Index: 1,
		Method: fl.method, Fingerprint: fl.fp, Store: st,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(wk.Handler())
	t.Cleanup(ts.Close)
	fl.rt.SetWorker(1, ts.URL)
	if err := fl.coord.Reattach(1, ts.URL); err != nil {
		t.Fatal(err)
	}

	// The fleet republished under a fresh version; routed answers are
	// whole and bit-identical again.
	var after wirePayload
	getRouted(t, fl.front, "/v1/answers", http.StatusOK, &after)
	if after.Version != 2 {
		t.Fatalf("post-reattach version %d, want 2", after.Version)
	}
	sameWireAnswers(t, "routed post-reattach", after.Answers, want)
}
