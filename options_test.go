package truthdiscovery

import (
	"strings"
	"testing"
)

// The public fusion surface must not silently ignore options (ISSUE 5):
// Fuse routes Shards > 1 to the sharded engine, and every entry point
// validates knob combinations instead of no-opping them.

// optionsWorld builds a small two-day stream with enough disagreement to
// exercise trust estimation.
func optionsWorld(t *testing.T) (*Dataset, *Snapshot, []*Delta) {
	t.Helper()
	b := NewBuilder("options")
	price := b.Attribute("price", Number)
	srcs := make([]SourceID, 6)
	for i := range srcs {
		srcs[i] = b.Source(strings.Repeat("s", i+1))
	}
	objs := make([]ObjectID, 40)
	for i := range objs {
		objs[i] = b.Object("obj" + strings.Repeat("x", i%7) + string(rune('a'+i%26)))
		for si, s := range srcs {
			v := "10.50"
			if si >= 4 && i%3 == 0 {
				v = "11.25" // minority wrong value
			}
			if err := b.Claim(s, objs[i], price, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.EndDay("day0")
	for i := range objs {
		v := "10.50"
		if i%5 == 0 {
			v = "12.75" // repriced
		}
		for _, s := range srcs {
			if err := b.Claim(s, objs[i], price, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.EndDay("day1")
	ds, day0, deltas, err := b.BuildStream()
	if err != nil {
		t.Fatal(err)
	}
	return ds, day0, deltas
}

// TestFuseHonorsShards asserts the footgun fix: Fuse given Shards: 4
// delegates to the sharded engine, and both entry points return the same
// answers value for value.
func TestFuseHonorsShards(t *testing.T) {
	ds, snap, _ := optionsWorld(t)
	for _, method := range []string{"Vote", "AccuPr", "TruthFinder"} {
		opts := FuseOptions{Shards: 4}
		viaFuse, err := Fuse(ds, snap, method, opts)
		if err != nil {
			t.Fatalf("%s: Fuse: %v", method, err)
		}
		viaSharded, err := FuseSharded(ds, snap, method, opts)
		if err != nil {
			t.Fatalf("%s: FuseSharded: %v", method, err)
		}
		flat, err := Fuse(ds, snap, method, FuseOptions{})
		if err != nil {
			t.Fatalf("%s: flat Fuse: %v", method, err)
		}
		if len(viaFuse) != len(viaSharded) || len(viaFuse) != len(flat) {
			t.Fatalf("%s: answer counts %d/%d/%d", method, len(viaFuse), len(viaSharded), len(flat))
		}
		for i := range viaFuse {
			if viaFuse[i] != viaSharded[i] {
				t.Fatalf("%s: answer %d differs between Fuse(Shards:4) and FuseSharded(Shards:4): %+v vs %+v",
					method, i, viaFuse[i], viaSharded[i])
			}
			if viaFuse[i] != flat[i] {
				t.Fatalf("%s: answer %d differs between sharded and flat: %+v vs %+v",
					method, i, viaFuse[i], flat[i])
			}
		}
	}
}

// TestFuseHonorsMaxResidentShards exercises the budget mode through plain
// Fuse, which used to drop both options on the floor.
func TestFuseHonorsMaxResidentShards(t *testing.T) {
	ds, snap, _ := optionsWorld(t)
	budget, err := Fuse(ds, snap, "AccuPr", FuseOptions{Shards: 4, MaxResidentShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Fuse(ds, snap, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range flat {
		if budget[i] != flat[i] {
			t.Fatalf("answer %d differs under the memory budget: %+v vs %+v", i, budget[i], flat[i])
		}
	}
}

// TestShardedIncrementalWarmTolerance: the sharded incremental engine
// now honours a positive TrustTolerance with the per-shard warm path,
// and its warm answers are bit-identical to the flat warm path on the
// same stream. Zero tolerance stays bit-identical to a full fuse.
func TestShardedIncrementalWarmTolerance(t *testing.T) {
	ds, day0, deltas := optionsWorld(t)
	const tol = 0.05
	_, shd, err := FuseShardedStateful(ds, day0, "AccuPr", FuseOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, flat, err := FuseStateful(ds, day0, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	warmShd, shd, err := FuseShardedIncremental(ds, shd, deltas[0], "AccuPr",
		FuseOptions{Shards: 4, TrustTolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	warmFlat, flat, err := FuseIncremental(ds, flat, deltas[0], "AccuPr",
		FuseOptions{TrustTolerance: tol})
	if err != nil {
		t.Fatal(err)
	}
	if shd.Stats.Mode != flat.Stats.Mode {
		t.Fatalf("sharded mode %s vs flat %s", shd.Stats.Mode, flat.Stats.Mode)
	}
	if len(warmShd) != len(warmFlat) {
		t.Fatalf("answer counts %d vs %d", len(warmShd), len(warmFlat))
	}
	for i := range warmFlat {
		if warmShd[i] != warmFlat[i] {
			t.Fatalf("warm answer %d differs between sharded and flat: %+v vs %+v",
				i, warmShd[i], warmFlat[i])
		}
	}

	// Zero tolerance still matches a full fuse of day 1.
	_, st, err := FuseShardedStateful(ds, day0, "AccuPr", FuseOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	inc, _, err := FuseShardedIncremental(ds, st, deltas[0], "AccuPr", FuseOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	day1, err := day0.Apply(deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fuse(ds, day1, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if inc[i] != full[i] {
			t.Fatalf("incremental answer %d differs from full fuse: %+v vs %+v", i, inc[i], full[i])
		}
	}
}

// TestFlatStatefulRejectsShards: the flat stateful engine cannot honour a
// shard count, so it must say so.
func TestFlatStatefulRejectsShards(t *testing.T) {
	ds, day0, deltas := optionsWorld(t)
	if _, _, err := FuseStateful(ds, day0, "AccuPr", FuseOptions{Shards: 4}); err == nil {
		t.Fatal("FuseStateful accepted Shards > 1")
	}
	_, st, err := FuseStateful(ds, day0, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FuseIncremental(ds, st, deltas[0], "AccuPr", FuseOptions{Shards: 4}); err == nil {
		t.Fatal("FuseIncremental accepted Shards > 1")
	}
}

// TestFuseOptionsValidate covers the knob combinations that used to be
// silent no-ops.
func TestFuseOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts FuseOptions
		want string // substring of the error; "" = valid
	}{
		{"zero", FuseOptions{}, ""},
		{"sharded", FuseOptions{Shards: 8, MaxResidentShards: 2}, ""},
		{"negative parallelism", FuseOptions{Parallelism: -1}, "Parallelism"},
		{"negative shards", FuseOptions{Shards: -2}, "Shards"},
		{"negative resident", FuseOptions{Shards: 4, MaxResidentShards: -1}, "MaxResidentShards"},
		{"resident without shards", FuseOptions{MaxResidentShards: 2}, "Shards > 1"},
		{"negative tolerance", FuseOptions{TrustTolerance: -0.1}, "TrustTolerance"},
		{"auto planner", FuseOptions{Planner: &Planner{Mode: PlannerAuto}}, ""},
		{"forced planner", FuseOptions{Planner: &Planner{Mode: PlannerForced, ForcePath: ModeFull}}, ""},
		{"negative warm ceiling", FuseOptions{Planner: &Planner{WarmChurnCeiling: -1}}, "WarmChurnCeiling"},
		{"force path without forced mode", FuseOptions{Planner: &Planner{ForcePath: ModeWarm}}, "ForcePath"},
		{"forced sharded layout without shards",
			FuseOptions{Planner: &Planner{Mode: PlannerForced, ForcePath: ModeFull, ForceLayout: LayoutSharded}}, "Shards"},
		{"forced flat layout with shards",
			FuseOptions{Shards: 4, Planner: &Planner{Mode: PlannerForced, ForcePath: ModeFull, ForceLayout: LayoutFlat}}, "Shards"},
		{"forced sharded layout with shards",
			FuseOptions{Shards: 4, Planner: &Planner{Mode: PlannerForced, ForcePath: ModeFull, ForceLayout: LayoutSharded}}, ""},
	}
	ds, snap, _ := optionsWorld(t)
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
		// The entry points surface the same error instead of fusing.
		if _, ferr := Fuse(ds, snap, "Vote", tc.opts); ferr == nil {
			t.Fatalf("%s: Fuse accepted invalid options", tc.name)
		}
	}
}

// TestFingerprintStability: the fingerprint is a pure function of the
// answer-affecting options and ignores execution knobs.
func TestFingerprintStability(t *testing.T) {
	base := FuseOptions{Sources: []SourceID{0, 1, 2}}
	fp := base.Fingerprint("AccuPr")
	if fp != base.Fingerprint("AccuPr") {
		t.Fatal("fingerprint is not deterministic")
	}
	sameExec := FuseOptions{Sources: []SourceID{0, 1, 2}, Shards: 8, MaxResidentShards: 2, Parallelism: 4}
	if sameExec.Fingerprint("AccuPr") != fp {
		t.Fatal("execution knobs changed the fingerprint")
	}
	if base.Fingerprint("Vote") == fp {
		t.Fatal("method does not affect the fingerprint")
	}
	diffRoster := FuseOptions{Sources: []SourceID{0, 1}}
	if diffRoster.Fingerprint("AccuPr") == fp {
		t.Fatal("source roster does not affect the fingerprint")
	}
	diffTol := FuseOptions{Sources: []SourceID{0, 1, 2}, TrustTolerance: 0.1}
	if diffTol.Fingerprint("AccuPr") == fp {
		t.Fatal("trust tolerance does not affect the fingerprint")
	}
	// At zero tolerance every planner path is bit-identical, so the
	// planner must not perturb the digest; under a positive tolerance the
	// warm-vs-full choice is approximate and the planner's path knobs
	// must join it.
	planned := FuseOptions{Sources: []SourceID{0, 1, 2}, Planner: &Planner{Mode: PlannerAuto}}
	if planned.Fingerprint("AccuPr") != fp {
		t.Fatal("planner changed the fingerprint at zero tolerance")
	}
	tolPlanned := FuseOptions{Sources: []SourceID{0, 1, 2}, TrustTolerance: 0.1,
		Planner: &Planner{Mode: PlannerAuto}}
	if tolPlanned.Fingerprint("AccuPr") == diffTol.Fingerprint("AccuPr") {
		t.Fatal("planner does not affect the fingerprint under a positive tolerance")
	}
	tolCeiling := FuseOptions{Sources: []SourceID{0, 1, 2}, TrustTolerance: 0.1,
		Planner: &Planner{Mode: PlannerAuto, WarmChurnCeiling: 0.4}}
	if tolCeiling.Fingerprint("AccuPr") == tolPlanned.Fingerprint("AccuPr") {
		t.Fatal("warm ceiling does not affect the fingerprint under a positive tolerance")
	}
}
