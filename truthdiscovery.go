// Package truthdiscovery is a from-scratch Go reproduction of "Truth
// Finding on the Deep Web: Is the Problem Solved?" (Li, Dong, Lyons, Meng,
// Srivastava; PVLDB 6(2), 2012).
//
// It bundles, behind one public API:
//
//   - the paper's data model (sources providing values for data items),
//   - all sixteen data-fusion methods of the paper's Section 4 (VOTE, the
//     Web-link family, the IR family, the Bayesian ACCU family, TRUTHFINDER
//     and copy-aware ACCUCOPY),
//   - Bayesian copy detection between sources,
//   - the Section 3 data-quality profiling measures, and
//   - calibrated simulators of the paper's Stock and Flight collections.
//
// # Quick start
//
// Build a dataset from raw claims and fuse it:
//
//	b := truthdiscovery.NewBuilder("books")
//	price := b.Attribute("price", truthdiscovery.Number)
//	a, bk := b.Source("storeA"), b.Object("golang-book")
//	_ = b.Claim(a, bk, price, "42.50")
//	ds, snap, _ := b.Build()
//	answers, _ := truthdiscovery.Fuse(ds, snap, "AccuPr", truthdiscovery.FuseOptions{})
//
// Or regenerate the paper's experiments via the experiments package and the
// cmd/truthbench binary.
package truthdiscovery

import (
	"fmt"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// Re-exported core types. The internal packages stay the implementation;
// these aliases are the supported public surface.
type (
	// Dataset is a domain's sources, objects, attributes and items.
	Dataset = model.Dataset
	// Snapshot holds all claims collected at one point in time.
	Snapshot = model.Snapshot
	// Claim is one (source, item, value) observation.
	Claim = model.Claim
	// Source, Object, Attribute, Item are the schema elements.
	Source    = model.Source
	Object    = model.Object
	Attribute = model.Attribute
	Item      = model.Item
	// SourceID, ObjectID, AttrID, ItemID are dense identifiers.
	SourceID = model.SourceID
	ObjectID = model.ObjectID
	AttrID   = model.AttrID
	ItemID   = model.ItemID
	// TruthTable maps items to (believed) true values.
	TruthTable = model.TruthTable
	// Value is one normalised attribute value; ValueKind its kind.
	Value     = value.Value
	ValueKind = value.Kind
	// FusionMethod is one of the paper's sixteen algorithms.
	FusionMethod = fusion.Method
	// FusionResult is a fusion run's output.
	FusionResult = fusion.Result
	// FusionEval holds precision/recall/trust measures for a run.
	FusionEval = fusion.Eval
	// Planner tunes the adaptive execution planner (FuseOptions.Planner).
	Planner = fusion.Planner
	// PlannerMode selects auto planning or a forced plan.
	PlannerMode = fusion.PlannerMode
	// Plan is one advance's recorded execution decision.
	Plan = fusion.Plan
	// PlanFeatures are the measured delta features a plan decided on.
	PlanFeatures = fusion.PlanFeatures
	// PlanLayout names a problem layout (flat or sharded).
	PlanLayout = fusion.PlanLayout
)

// Planner modes and layouts.
const (
	// PlannerAuto computes each advance's plan from the delta features.
	PlannerAuto = fusion.PlannerAuto
	// PlannerForced executes exactly the plan named by the planner's
	// ForcePath/ForceLayout.
	PlannerForced = fusion.PlannerForced
	// LayoutFlat is the single-arena flat engine.
	LayoutFlat = fusion.LayoutFlat
	// LayoutSharded is the per-item-shard engine.
	LayoutSharded = fusion.LayoutSharded
)

// Value kinds.
const (
	Number = value.Number
	Time   = value.Time
	Text   = value.Text
)

// DefaultAlpha is the paper's tolerance factor for Eq. 3.
const DefaultAlpha = value.DefaultAlpha

// Methods returns the paper's fusion methods in Table 6 order.
func Methods() []FusionMethod { return fusion.Methods() }

// MethodByName returns a fusion method by its paper name ("Vote", "Hub",
// "AvgLog", "Invest", "PooledInvest", "Cosine", "2-Estimates",
// "3-Estimates", "TruthFinder", "AccuPr", "PopAccu", "AccuSim",
// "AccuFormat", "AccuSimAttr", "AccuFormatAttr", "AccuCopy").
func MethodByName(name string) (FusionMethod, bool) { return fusion.ByName(name) }

// Builder assembles a dataset from raw string claims, handling value
// parsing, normalisation and item allocation.
type Builder struct {
	ds     *model.Dataset
	claims []model.Claim
	days   []dayClaims // sealed days for BuildStream (see EndDay)
	err    error
}

// dayClaims is one sealed day of a streaming build.
type dayClaims struct {
	label  string
	claims []model.Claim
}

// NewBuilder starts a dataset for the named domain.
func NewBuilder(domain string) *Builder {
	return &Builder{ds: model.NewDataset(domain)}
}

// Attribute registers a global attribute of the given kind and returns its
// ID. Attributes registered through the builder are always "considered".
func (b *Builder) Attribute(name string, kind ValueKind) AttrID {
	return b.ds.AddAttr(model.Attribute{Name: name, Kind: kind, Considered: true})
}

// Source registers a source and returns its ID.
func (b *Builder) Source(name string) SourceID {
	return b.ds.AddSource(model.Source{Name: name})
}

// AuthoritySource registers a source marked as an authority (usable for
// gold-standard voting).
func (b *Builder) AuthoritySource(name string) SourceID {
	return b.ds.AddSource(model.Source{Name: name, Authority: true})
}

// Object registers a real-world object and returns its ID.
func (b *Builder) Object(key string) ObjectID {
	return b.ds.AddObject(model.Object{Key: key})
}

// Claim records that the source provides raw as the value of (object,
// attribute). The raw string is parsed per the attribute's kind ("6.7M",
// "6,700,000", "18:15", "6:15pm", "B22"...). The first parse error is
// retained and returned by Build.
func (b *Builder) Claim(src SourceID, obj ObjectID, attr AttrID, raw string) error {
	v, err := value.Parse(b.ds.Attrs[attr].Kind, raw)
	if err != nil {
		if b.err == nil {
			b.err = err
		}
		return err
	}
	item := b.ds.ItemFor(obj, attr)
	b.claims = append(b.claims, model.Claim{
		Source: src, Item: item, Val: v, CopiedFrom: model.NoSource,
	})
	return nil
}

// ClaimValue records an already-normalised value.
func (b *Builder) ClaimValue(src SourceID, obj ObjectID, attr AttrID, v Value) {
	item := b.ds.ItemFor(obj, attr)
	b.claims = append(b.claims, model.Claim{
		Source: src, Item: item, Val: v, CopiedFrom: model.NoSource,
	})
}

// Build finalises the dataset: the snapshot is indexed, per-attribute
// tolerances are derived (Eq. 3 with the default alpha), and the first
// recorded error, if any, is returned.
func (b *Builder) Build() (*Dataset, *Snapshot, error) {
	if b.err != nil {
		return nil, nil, b.err
	}
	snap := model.NewSnapshot(0, "snapshot", len(b.ds.Items), b.claims)
	b.ds.AddSnapshot(snap)
	b.ds.ComputeTolerances(value.DefaultAlpha, snap)
	if err := b.ds.Validate(); err != nil {
		return nil, nil, err
	}
	return b.ds, snap, nil
}

// Answer is one fused data item: the winning value and its support. It is
// an alias of the internal rendering type so the serving layer
// (internal/store, internal/serve) shares it without conversion.
type Answer = fusion.Answer

// FuseOptions configures Fuse.
type FuseOptions struct {
	// Sources restricts fusion to these sources (nil = all).
	Sources []SourceID
	// Gold, when set, lets trust-aware methods start from sampled
	// trustworthiness ("prec w. trust" in the paper).
	Gold *TruthTable
	// KnownCopyGroups feeds AccuCopy discovered copying groups.
	KnownCopyGroups [][]SourceID
	// Parallelism bounds the worker pool used for problem construction,
	// the per-item phases of every fusion iteration, and copy detection:
	// 0 (the default) uses GOMAXPROCS, 1 forces the exact serial path.
	// Results are bit-identical at any setting.
	Parallelism int
	// TrustTolerance (the incremental engines) enables the approximate
	// dirty-only warm path: the ACCU-family methods re-run the posterior
	// phase only for changed items while no source trust drifts more than
	// this from the previous state, falling back to full re-fusion past
	// it. 0 (the default) keeps incremental answers bit-identical to Fuse.
	// Both layouts support it: the sharded engine runs the same warm
	// iteration per shard, feeding the deterministic cross-shard trust
	// merge — bit-identical to the flat warm path at any shard count.
	TrustTolerance float64
	// Planner, when set, plans each incremental advance from the day's
	// measured delta features (churn fraction, dirty-shard fan-out, arena
	// bytes) instead of the fixed tolerance-only gating: PlannerAuto
	// applies the churn ceiling to the warm path (warm wins at low churn,
	// loses at the paper's 90%-churn days), PlannerForced executes
	// exactly the named path. FuseAuto additionally uses
	// Planner.ArenaBudgetBytes to lay the world out flat or sharded. The
	// decision and its features are recorded on the result
	// (FusionResult.Plan) and in the stats of every advance.
	Planner *Planner
	// Shards partitions the items into this many range shards, each fused
	// as its own problem with one deterministic cross-shard trust merge.
	// 0 or 1 means one shard. Answers are bit-identical to Fuse at any
	// setting; Fuse itself delegates to the sharded engine when Shards > 1.
	Shards int
	// MaxResidentShards (with Shards > 1) bounds how many shard arenas
	// stay in memory at once: shards beyond the bound are rebuilt on
	// demand and dropped after each pass, trading time for a memory
	// ceiling of roughly one shard's arena. 0 keeps every shard resident.
	MaxResidentShards int
}

// Fuse resolves conflicts in a snapshot with the named method and returns
// one answer per claimed item, in item order.
//
// With FuseOptions.Shards > 1 the call delegates to the sharded engine
// (FuseSharded): answers are bit-identical, so the shard count is purely an
// execution choice — shard-level concurrency, or a bounded memory ceiling
// via MaxResidentShards — and never changes the result.
func Fuse(ds *Dataset, snap *Snapshot, method string, opts FuseOptions) ([]Answer, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		return FuseSharded(ds, snap, method, opts)
	}
	m, ok := fusion.ByName(method)
	if !ok {
		return nil, fmt.Errorf("truthdiscovery: unknown fusion method %q", method)
	}
	needs := m.Needs()
	needs.Parallelism = opts.Parallelism
	p := fusion.Build(ds, snap, opts.Sources, needs)
	fo := fusion.Options{KnownGroups: opts.KnownCopyGroups, Parallelism: opts.Parallelism}
	if opts.Gold != nil {
		fo.InputTrust = m.TrustScale(fusion.SampleAccuracy(ds, snap, p, opts.Gold))
		fo.InputAttrTrust = fusion.SampleAttrAccuracy(ds, snap, p, opts.Gold)
	}
	res := m.Run(p, fo)
	return fusion.AnswersFor(ds, p, res), nil
}

// EvaluateAgainst scores fused answers against a gold standard, returning
// precision over answered gold items and recall over all gold items.
func EvaluateAgainst(ds *Dataset, answers []Answer, gold *TruthTable) FusionEval {
	right, answered := 0, 0
	for _, a := range answers {
		truth, ok := gold.Get(a.Item)
		if !ok {
			continue
		}
		answered++
		if value.Equal(truth, a.Value, ds.Tolerance(ds.Items[a.Item].Attr)) {
			right++
		}
	}
	var e FusionEval
	if answered > 0 {
		e.Precision = float64(right) / float64(answered)
	}
	if gold.Len() > 0 {
		e.Recall = float64(right) / float64(gold.Len())
	}
	e.Errors = answered - right
	return e
}
