# Local and CI entry points. CI (.github/workflows/ci.yml) calls these
# exact targets so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel equivalence tests run under the race detector here; this is
# the gate that keeps the work-stealing layer honest.
race:
	$(GO) test -race ./...

# Bench smoke: one iteration of every benchmark, no unit tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build race bench
