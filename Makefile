# Local and CI entry points. CI (.github/workflows/ci.yml) calls these
# exact targets so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test race bench benchpairs benchgate bench-profile examples serve-smoke load-smoke lint fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel equivalence tests run under the race detector here; this is
# the gate that keeps the work-stealing layer honest.
race:
	$(GO) test -race ./...

# Bench smoke: one iteration of every benchmark, no unit tests.
bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# The serial/parallel, full/incremental, flat/sharded,
# sorted/unsorted-Apply and serving-layer benchmark pairs, at 1 and 4
# cores — the
# multi-core trajectory CI records per push (bench.txt). -benchmem
# records allocs/op, which the gate compares raw since allocation counts
# are hardware-independent (whole-Run benches allocate their per-run
# scratch, so the counts are small but nonzero; the per-round zero-alloc
# property itself is asserted by internal/fusion/alloc_test.go).
# pipefail keeps a failed/panicking bench run from hiding behind tee.
benchpairs: SHELL := /bin/bash
benchpairs:
	set -o pipefail; $(GO) test -run='^$$' -bench='(Serial|Parallel|Incremental|SnapshotApply|Sharded|Serve|Store|Distributed|Kernel|Planned)' -cpu=1,4 -benchtime=3x -benchmem . ./internal/model ./internal/fusion | tee bench.txt

# Regression gate: hardware-normalised ns/op against the committed
# baseline (see cmd/benchdiff). BENCH is the candidate JSON.
BENCH ?= bench.json
benchgate:
	$(GO) run ./cmd/benchdiff -old testdata/bench_baseline.json -new $(BENCH) -threshold 1.20

# CPU + allocation profiles of the hottest fusion loops. CI uploads the
# pprof files (plus the test binary that resolves their symbols) per
# push, so a layout regression can be diagnosed straight from the run
# page with `go tool pprof truthdiscovery.test cpu.pprof`. The top-10
# cumulative text reports make the hot-kernel split readable from the
# artifact without running pprof locally.
bench-profile:
	$(GO) test -run='^$$' \
		-bench='BenchmarkFusionAccuFormatAttrSerial|BenchmarkMethodAccuPr$$|BenchmarkMethodCosine$$|BenchmarkMethodTwoEstimates$$' \
		-benchtime=5x -benchmem -cpuprofile=cpu.pprof -memprofile=mem.pprof .
	$(GO) tool pprof -top -cum -nodecount=10 truthdiscovery.test cpu.pprof > cpu.top10.txt
	$(GO) tool pprof -top -cum -nodecount=10 truthdiscovery.test mem.pprof > mem.top10.txt

# Serving smoke: start truthserved on an ephemeral port, curl every
# endpoint, and check one served answer against cmd/fuse on the same
# claims (plus the shared flag validation). CI runs this in the test job.
serve-smoke:
	GO=$(GO) ./scripts/serve-smoke.sh

# Load-harness smoke: truthload drives a short read/write mix against a
# live truthserved and its bench line round-trips through benchdiff
# (see scripts/load-smoke.sh). The gated serving-latency numbers come
# from the BenchmarkServeLoad* pairs in benchpairs, not from this smoke.
load-smoke:
	GO=$(GO) ./scripts/load-smoke.sh

# Smoke-run every example program (tier-1 only builds them).
examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d > /dev/null; \
	done

lint:
	@fmtout="$$(gofmt -l .)"; \
	if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .

ci: lint build race bench examples serve-smoke load-smoke
