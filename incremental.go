package truthdiscovery

import (
	"fmt"

	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// Streaming ingest and incremental fusion: instead of re-fusing every
// snapshot from scratch, ship the day-0 snapshot once and a Delta per day,
// and advance a FusedState across the stream. With the default options the
// answers are bit-identical to calling Fuse on each day's full snapshot —
// the engine reuses the previous problem for unchanged items (and, for
// item-local methods like Vote, the previous answers) and re-runs only
// what the method's contract requires.

// Delta is the claim-level difference between two snapshots: claims added,
// retracted and changed. Produce one with Snapshot.Diff, replay it with
// Snapshot.Apply, or assemble it by hand for true streaming ingest.
type Delta = model.Delta

// ValueChange is one claim whose (source, item) key survives a delta with
// a different payload.
type ValueChange = model.ValueChange

// IncrementalStats reports which path an incremental fuse took and how
// many items it rebuilt.
type IncrementalStats = fusion.IncrementalStats

// AdvanceMode names the incremental paths (see the Mode* constants).
type AdvanceMode = fusion.AdvanceMode

// The incremental fuse paths.
const (
	// ModeLocal recomputed only the dirty items (item-local methods).
	ModeLocal = fusion.ModeLocal
	// ModeWarm ran the dirty-only warm iteration (TrustTolerance > 0).
	ModeWarm = fusion.ModeWarm
	// ModeFull re-ran the full iteration on the incrementally maintained
	// problem (still cheaper than Fuse: unchanged items keep their
	// buckets and similarity/format structures).
	ModeFull = fusion.ModeFull
)

// FusedState is the reusable output of FuseStateful / FuseIncremental: the
// snapshot it reflects, the fused problem, source trusts and per-item
// posteriors. States are immutable — advancing one returns a fresh state,
// so earlier days can be re-advanced (e.g. to branch a what-if delta).
type FusedState struct {
	st *fusion.State
	// Stats describes the fuse that produced this state.
	Stats IncrementalStats
}

// Snapshot returns the snapshot this state reflects.
func (s *FusedState) Snapshot() *Snapshot { return s.st.Snap }

// Method returns the fusion method name the state was built with.
func (s *FusedState) Method() string { return s.st.Method().Name() }

// Result exposes the underlying fusion result (trust vector, rounds...).
func (s *FusedState) Result() *FusionResult { return s.st.Result }

// FuseStateful fuses a snapshot like Fuse and additionally returns the
// reusable state that FuseIncremental advances over deltas. Sampled-trust
// runs (FuseOptions.Gold) have no estimation loop to reuse and are not
// supported here — use Fuse for those.
func FuseStateful(ds *Dataset, snap *Snapshot, method string, opts FuseOptions) ([]Answer, *FusedState, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Shards > 1 {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseStateful runs the flat engine and would ignore Shards = %d; use FuseShardedStateful", opts.Shards)
	}
	m, ok := fusion.ByName(method)
	if !ok {
		return nil, nil, fmt.Errorf("truthdiscovery: unknown fusion method %q", method)
	}
	if opts.Gold != nil {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseStateful does not support sampled trust (Gold); use Fuse")
	}
	st := fusion.NewState(ds, snap, opts.Sources, m, fusion.Options{
		KnownGroups: opts.KnownCopyGroups,
		Parallelism: opts.Parallelism,
	})
	state := &FusedState{st: st, Stats: IncrementalStats{
		Mode: ModeFull, DirtyItems: len(st.Problem.Items), TotalItems: len(st.Problem.Items),
	}}
	return fusion.AnswersFor(ds, st.Problem, st.Result), state, nil
}

// FuseIncremental advances a previous fused state over a delta and returns
// the new answers plus the new state. method must match the state's; the
// explicit parameter keeps call sites self-describing.
//
// With a zero FuseOptions.TrustTolerance the answers are bit-identical to
// Fuse on the delta's target snapshot. A positive tolerance additionally
// enables the dirty-only warm path for the ACCU-family methods: the
// vote/posterior phase re-runs only for items whose claim sets changed,
// warm-started from the previous trust, with an automatic fallback to full
// re-fusion as soon as any source's trust drifts past the tolerance.
func FuseIncremental(ds *Dataset, prev *FusedState, delta *Delta, method string, opts FuseOptions) ([]Answer, *FusedState, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.Shards > 1 {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseIncremental runs the flat engine and would ignore Shards = %d; use FuseShardedIncremental", opts.Shards)
	}
	if prev == nil || prev.st == nil {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseIncremental needs a state from FuseStateful")
	}
	if got := prev.Method(); got != method {
		return nil, nil, fmt.Errorf("truthdiscovery: state was fused with %q, not %q", got, method)
	}
	if opts.Gold != nil {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseIncremental does not support sampled trust (Gold); use Fuse")
	}
	// The source roster was frozen into the state at FuseStateful time; a
	// different roster here would be silently ignored, so reject it.
	if opts.Sources != nil && !sameSources(opts.Sources, prev.st.Problem.SourceIDs) {
		return nil, nil, fmt.Errorf("truthdiscovery: FuseIncremental cannot change the source roster; start a new state with FuseStateful")
	}
	st, stats, err := prev.st.Advance(ds, delta, fusion.Options{
		KnownGroups: opts.KnownCopyGroups,
		Parallelism: opts.Parallelism,
	}, fusion.IncrementalOptions{TrustTolerance: opts.TrustTolerance, Planner: opts.Planner})
	if err != nil {
		return nil, nil, err
	}
	state := &FusedState{st: st, Stats: stats}
	return fusion.AnswersFor(ds, st.Problem, st.Result), state, nil
}

// sameSources reports whether two rosters are element-wise equal.
func sameSources(a, b []SourceID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EndDay seals every claim recorded since the previous EndDay call into
// one daily snapshot with the given label ("" derives dayN) and starts the
// next day. Returns the day index. Use BuildStream to finalise.
func (b *Builder) EndDay(label string) int {
	if label == "" {
		label = fmt.Sprintf("day%d", len(b.days))
	}
	b.days = append(b.days, dayClaims{label: label, claims: b.claims})
	b.claims = nil
	return len(b.days) - 1
}

// BuildStream finalises a multi-day dataset as a delta stream: the day-0
// snapshot plus one Delta per subsequent day (claims still pending after
// the last EndDay form the final day). Tolerances are derived over the
// whole period, so every day is bucketed under one regime — the invariant
// incremental fusion relies on. All day snapshots are registered on the
// dataset in order.
func (b *Builder) BuildStream() (*Dataset, *Snapshot, []*Delta, error) {
	if b.err != nil {
		return nil, nil, nil, b.err
	}
	days := b.days
	if len(b.claims) > 0 || len(days) == 0 {
		days = append(days, dayClaims{label: fmt.Sprintf("day%d", len(days)), claims: b.claims})
		b.days = days
		b.claims = nil
	}
	// Snapshots are built only now, when the item table is final, so every
	// day is indexed for the same items and Diff applies across days.
	snaps := make([]*Snapshot, len(days))
	for d := range days {
		snaps[d] = model.NewSnapshot(d, days[d].label, len(b.ds.Items), days[d].claims)
		b.ds.AddSnapshot(snaps[d])
	}
	b.ds.ComputeTolerances(value.DefaultAlpha, snaps...)
	if err := b.ds.Validate(); err != nil {
		return nil, nil, nil, err
	}
	deltas := make([]*Delta, 0, len(snaps)-1)
	for d := 1; d < len(snaps); d++ {
		dl, err := snaps[d-1].Diff(snaps[d])
		if err != nil {
			return nil, nil, nil, err
		}
		deltas = append(deltas, dl)
	}
	return b.ds, snaps[0], deltas, nil
}
