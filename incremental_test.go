package truthdiscovery

import (
	"fmt"
	"reflect"
	"testing"

	"truthdiscovery/internal/datagen"
	"truthdiscovery/internal/fusion"
	"truthdiscovery/internal/model"
	"truthdiscovery/internal/value"
)

// streamWorld returns a reduced but calibrated multi-day collection with
// one fixed tolerance regime over the whole period (the streaming-ingest
// contract), plus the per-day snapshots.
func streamWorlds(t testing.TB, days int) []struct {
	name  string
	ds    *Dataset
	snaps []*Snapshot
	fused []SourceID
} {
	t.Helper()
	scfg := datagen.DefaultStockConfig(5)
	scfg.Stocks = 100
	scfg.GoldSymbols = 50
	scfg.Days = days
	sgen := datagen.NewStock(scfg)

	fcfg := datagen.DefaultFlightConfig(5)
	fcfg.Flights = 150
	fcfg.GoldFlights = 50
	fcfg.Days = days
	fgen := datagen.NewFlight(fcfg)

	type world = struct {
		name  string
		ds    *Dataset
		snaps []*Snapshot
		fused []SourceID
	}
	var out []world
	for _, g := range []struct {
		name string
		gen  datagen.Generator
	}{{"Stock", sgen}, {"Flight", fgen}} {
		ds := g.gen.Dataset()
		var snaps []*Snapshot
		for d := 0; d < days; d++ {
			snaps = append(snaps, g.gen.Snapshot(d))
			ds.AddSnapshot(snaps[d])
		}
		ds.ComputeTolerances(value.DefaultAlpha, snaps...)
		out = append(out, world{g.name, ds, snaps, g.gen.FusedSources()})
	}
	return out
}

// TestFuseIncrementalBitIdentical is the acceptance contract of the
// streaming engine: advancing a fused state over the day-over-day delta
// stream of the simulated Stock and Flight collections produces answers
// bit-identical to full Fuse on each day's snapshot, for an item-local
// method (Vote), a plain Bayesian method (AccuPr) and the paper's
// strongest method (AccuFormatAttr). CI runs this under -race.
func TestFuseIncrementalBitIdentical(t *testing.T) {
	const days = 4
	for _, w := range streamWorlds(t, days) {
		for _, method := range []string{"Vote", "AccuPr", "AccuFormatAttr"} {
			opts := FuseOptions{Sources: w.fused}
			got, state, err := FuseStateful(w.ds, w.snaps[0], method, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Fuse(w.ds, w.snaps[0], method, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s day 0: stateful answers differ from Fuse", w.name, method)
			}

			for d := 1; d < days; d++ {
				delta, err := w.snaps[d-1].Diff(w.snaps[d])
				if err != nil {
					t.Fatal(err)
				}
				got, state, err = FuseIncremental(w.ds, state, delta, method, opts)
				if err != nil {
					t.Fatal(err)
				}
				want, err = Fuse(w.ds, w.snaps[d], method, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s day %d: incremental answers differ from full re-fusion (mode %s)",
						w.name, method, d, state.Stats.Mode)
				}
				if method == "Vote" && state.Stats.Mode != ModeLocal {
					t.Fatalf("%s/Vote day %d: mode %s, want local", w.name, d, state.Stats.Mode)
				}
			}
		}
	}
}

// TestFuseIncrementalAllMethods extends the bit-identity contract to the
// full sixteen-method roster on the calibrated Stock stream: whatever
// path Advance picks for a method (item-local, warm or full re-run on
// the maintained problem), the incremental answers must equal full Fuse
// of each day's snapshot exactly.
func TestFuseIncrementalAllMethods(t *testing.T) {
	const days = 3
	w := streamWorlds(t, days)[0] // Stock
	for _, m := range fusion.Methods() {
		method := m.Name()
		opts := FuseOptions{Sources: w.fused}
		got, state, err := FuseStateful(w.ds, w.snaps[0], method, opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Fuse(w.ds, w.snaps[0], method, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s day 0: stateful answers differ from Fuse", method)
		}
		for d := 1; d < days; d++ {
			delta, err := w.snaps[d-1].Diff(w.snaps[d])
			if err != nil {
				t.Fatal(err)
			}
			got, state, err = FuseIncremental(w.ds, state, delta, method, opts)
			if err != nil {
				t.Fatal(err)
			}
			want, err = Fuse(w.ds, w.snaps[d], method, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s day %d: incremental answers differ from full re-fusion (mode %s)",
					method, d, state.Stats.Mode)
			}
		}
	}
}

// TestFuseIncrementalTrustBitIdentical pins the trust vectors too, not
// just the answers, on the Stock stream.
func TestFuseIncrementalTrustBitIdentical(t *testing.T) {
	const days = 3
	w := streamWorlds(t, days)[0]
	for _, method := range []string{"AccuPr", "AccuFormatAttr"} {
		opts := FuseOptions{Sources: w.fused}
		_, state, err := FuseStateful(w.ds, w.snaps[0], method, opts)
		if err != nil {
			t.Fatal(err)
		}
		for d := 1; d < days; d++ {
			delta, err := w.snaps[d-1].Diff(w.snaps[d])
			if err != nil {
				t.Fatal(err)
			}
			_, state, err = FuseIncremental(w.ds, state, delta, method, opts)
			if err != nil {
				t.Fatal(err)
			}
			m, _ := fusion.ByName(method)
			full := m.Run(fusion.Build(w.ds, w.snaps[d], w.fused, m.Needs()), fusion.Options{})
			if !reflect.DeepEqual(state.Result().Trust, full.Trust) {
				t.Fatalf("%s day %d: trust vectors differ", method, d)
			}
			if !reflect.DeepEqual(state.Result().AttrTrust, full.AttrTrust) {
				t.Fatalf("%s day %d: attr trust differs", method, d)
			}
			if state.Result().Rounds != full.Rounds {
				t.Fatalf("%s day %d: rounds %d vs %d", method, d, state.Result().Rounds, full.Rounds)
			}
		}
	}
}

// TestBuilderStream exercises the public streaming-ingest path end to end:
// seal days on a Builder, get the delta stream, fuse incrementally, and
// check against full fusion of every reconstructed day.
func TestBuilderStream(t *testing.T) {
	b := NewBuilder("inventory")
	price := b.Attribute("price", Number)
	stores := make([]SourceID, 6)
	for i := range stores {
		stores[i] = b.Source(fmt.Sprintf("store%d", i))
	}
	items := make([]ObjectID, 8)
	for i := range items {
		items[i] = b.Object(fmt.Sprintf("sku%d", i))
	}

	// Day 0: everyone roughly agrees, one store is off.
	for i, obj := range items {
		base := fmt.Sprintf("%d.50", 10+i)
		for s, store := range stores {
			v := base
			if s == 5 {
				v = fmt.Sprintf("%d.80", 10+i)
			}
			if err := b.Claim(store, obj, price, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.EndDay("mon")

	// Day 1: one SKU reprices, one store drops a SKU, a new claim appears.
	for i, obj := range items {
		base := fmt.Sprintf("%d.50", 10+i)
		if i == 2 {
			base = "99.00"
		}
		for s, store := range stores {
			if s == 4 && i == 0 {
				continue // retracted
			}
			v := base
			if s == 5 {
				v = fmt.Sprintf("%d.80", 10+i)
			}
			if err := b.Claim(store, obj, price, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	b.EndDay("tue")

	ds, day0, deltas, err := b.BuildStream()
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 {
		t.Fatalf("deltas = %d, want 1", len(deltas))
	}
	if deltas[0].Empty() {
		t.Fatal("day churn produced an empty delta")
	}

	answers, state, err := FuseStateful(ds, day0, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(items) {
		t.Fatalf("day0 answers = %d, want %d", len(answers), len(items))
	}

	answers, state, err = FuseIncremental(ds, state, deltas[0], "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	day1 := state.Snapshot()
	want, err := Fuse(ds, day1, "AccuPr", FuseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(answers, want) {
		t.Fatal("incremental answers differ from full fusion of day 1")
	}
	// The repriced SKU must have moved to the new consensus.
	for _, a := range answers {
		if a.ObjectKey == "sku2" && a.Value.Num != 99 {
			t.Fatalf("sku2 fused to %v, want 99", a.Value)
		}
	}
}

// TestFuseIncrementalGuards checks the API-misuse errors.
func TestFuseIncrementalGuards(t *testing.T) {
	w := streamWorlds(t, 2)[0]
	if _, _, err := FuseStateful(w.ds, w.snaps[0], "NoSuchMethod", FuseOptions{}); err == nil {
		t.Fatal("unknown method accepted")
	}
	_, state, err := FuseStateful(w.ds, w.snaps[0], "Vote", FuseOptions{Sources: w.fused})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := w.snaps[0].Diff(w.snaps[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := FuseIncremental(w.ds, state, delta, "AccuPr", FuseOptions{}); err == nil {
		t.Fatal("method mismatch accepted")
	}
	// The roster is frozen into the state; changing it must error, while
	// re-passing the same roster stays fine.
	if _, _, err := FuseIncremental(w.ds, state, delta, "Vote", FuseOptions{Sources: w.fused[:3]}); err == nil {
		t.Fatal("roster change accepted")
	}
	if _, _, err := FuseIncremental(w.ds, state, delta, "Vote", FuseOptions{Sources: w.fused}); err != nil {
		t.Fatalf("same roster rejected: %v", err)
	}
	if _, _, err := FuseIncremental(w.ds, nil, delta, "Vote", FuseOptions{}); err == nil {
		t.Fatal("nil state accepted")
	}
	gold := model.NewTruthTable()
	if _, _, err := FuseStateful(w.ds, w.snaps[0], "Vote", FuseOptions{Gold: gold}); err == nil {
		t.Fatal("sampled trust accepted by FuseStateful")
	}
}
